//! Fuzz-shaped properties for the HTTP/1.1 request parser: arbitrary
//! bytes, truncations of valid requests, pathological read chunkings
//! and single-byte mutations must never panic; any failure must land
//! in one of the typed [`RequestError`] categories the server maps to
//! 4xx/5xx responses; well-formed requests must parse to the same
//! request no matter how the socket splits the bytes; and pipelined
//! request streams must come apart at exactly their framing
//! boundaries with keep-alive semantics intact, whatever the
//! chunking.

use fragalign_serve::http::{read_request, try_parse, Parse, Request, RequestError};
use proptest::collection::vec;
use proptest::prelude::*;
use std::io::{Read, Write};

/// A duplex test stream that hands out at most `chunk` bytes per
/// `read` — the socket-level adversary: head/body boundaries landing
/// anywhere, including mid-CRLF.
struct ChunkedPipe {
    input: Vec<u8>,
    pos: usize,
    chunk: usize,
    output: Vec<u8>,
}

impl ChunkedPipe {
    fn new(input: &[u8], chunk: usize) -> Self {
        assert!(chunk > 0, "zero-byte reads would mean EOF");
        ChunkedPipe {
            input: input.to_vec(),
            pos: 0,
            chunk,
            output: Vec::new(),
        }
    }
}

impl Read for ChunkedPipe {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let n = self.chunk.min(buf.len()).min(self.input.len() - self.pos);
        buf[..n].copy_from_slice(&self.input[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

impl Write for ChunkedPipe {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.output.extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn parse(bytes: &[u8], chunk: usize, max_body: usize) -> Result<Request, RequestError> {
    read_request(&mut ChunkedPipe::new(bytes, chunk), max_body)
}

/// A canonical valid POST whose body is `body`; `needed` is the byte
/// count the parser actually consumes.
fn valid_post(body: &str) -> (Vec<u8>, usize) {
    let head = format!(
        "POST /v1/solve HTTP/1.1\r\nHost: fuzz\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let needed = head.len() + body.len();
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    (bytes, needed)
}

/// Feed `bytes` into an incremental-parse buffer `chunk` bytes at a
/// time, draining every complete request as it becomes parseable —
/// exactly the event loop's read path. Returns the parsed requests
/// and whatever leftover bytes never completed a request.
fn parse_stream(bytes: &[u8], chunk: usize, max_body: usize) -> (Vec<Request>, Vec<u8>) {
    let mut buf: Vec<u8> = Vec::new();
    let mut out = Vec::new();
    for piece in bytes.chunks(chunk.max(1)) {
        buf.extend_from_slice(piece);
        loop {
            match try_parse(&buf, max_body) {
                Ok(Parse::Ready { request, consumed }) => {
                    buf.drain(..consumed);
                    out.push(request);
                }
                Ok(Parse::Incomplete { .. }) => break,
                Err(e) => panic!("a well-formed stream must stay parseable: {e:?}"),
            }
        }
    }
    (out, buf)
}

proptest! {
    /// Arbitrary byte soup, delivered in arbitrary chunkings, never
    /// panics; when it does parse, the parser's own invariants hold.
    #[test]
    fn arbitrary_bytes_never_panic(
        bytes in vec(0u8..=255, 0..600),
        chunk in 1usize..9,
        max_body in 0usize..256,
    ) {
        if let Ok(req) = parse(&bytes, chunk, max_body) {
            prop_assert!(!req.method.is_empty());
            prop_assert!(!req.path.is_empty());
            prop_assert!(req.body.len() <= max_body, "body exceeded the cap");
            for (name, _) in &req.headers {
                prop_assert_eq!(
                    name.clone(), name.to_ascii_lowercase(),
                    "header names must be lower-cased at parse time"
                );
            }
        }
        // An Err is fine by construction: every variant maps to a
        // 4xx/5xx response or a dropped connection, never a panic.
    }

    /// Truncating a valid request anywhere fails cleanly; the full
    /// request parses whole, byte-for-byte, at every chunking.
    #[test]
    fn truncations_fail_cleanly_and_full_requests_split_anywhere(
        body_bytes in vec(32u8..127, 0..80),
        cut in 0usize..200,
        chunk in 1usize..9,
    ) {
        let body: String = body_bytes.iter().map(|&b| b as char).collect();
        let (bytes, needed) = valid_post(&body);
        let cut = cut.min(needed);
        let result = parse(&bytes[..cut], chunk, 4096);
        if cut < needed {
            prop_assert!(
                result.is_err(),
                "a truncated request (cut {} of {}) must not parse",
                cut, needed
            );
        } else {
            let req = result.expect("the complete request parses");
            prop_assert_eq!(&req.method, "POST");
            prop_assert_eq!(&req.path, "/v1/solve");
            prop_assert_eq!(req.header("host"), Some("fuzz"));
            prop_assert_eq!(&req.body, &body);
            // And the chunking must not matter: one-shot == chunked.
            let whole = parse(&bytes, needed.max(1), 4096).unwrap();
            prop_assert_eq!(&req.body, &whole.body);
            prop_assert_eq!(&req.headers, &whole.headers);
        }
    }

    /// Flipping any single byte of a valid request never panics, and
    /// mutations ahead of the body either still parse or land in a
    /// typed error.
    #[test]
    fn single_byte_mutations_never_panic(
        body_bytes in vec(32u8..127, 1..60),
        idx in any::<prop::sample::Index>(),
        replacement in 0u8..=255,
    ) {
        let body: String = body_bytes.iter().map(|&b| b as char).collect();
        let (mut bytes, _) = valid_post(&body);
        let at = idx.index(bytes.len());
        bytes[at] = replacement;
        match parse(&bytes, 5, 4096) {
            Ok(req) => prop_assert!(req.body.len() <= 4096),
            Err(
                RequestError::Malformed(_)
                | RequestError::Unimplemented(_)
                | RequestError::BodyTooLarge { .. }
                | RequestError::Io(_),
            ) => {}
        }
    }

    /// Well-formed requests round-trip field by field: mixed-case
    /// header names arrive lower-cased, optional whitespace around
    /// values is trimmed, and the body survives verbatim.
    #[test]
    fn valid_requests_round_trip(
        tag in 0u64..1_000_000,
        pad_left in 0usize..3,
        pad_right in 0usize..3,
        upper in any::<bool>(),
        chunk in 1usize..9,
    ) {
        let body = format!("{{\"tag\":{tag}}}");
        let name = if upper { "X-Fuzz-TAG" } else { "x-fuzz-tag" };
        let raw = format!(
            "POST /v1/solve?tag={tag} HTTP/1.1\r\n{name}:{}{tag}{}\r\nContent-Length: {}\r\n\r\n{body}",
            " ".repeat(pad_left),
            " ".repeat(pad_right),
            body.len(),
        );
        let req = parse(raw.as_bytes(), chunk, 4096).expect("valid request parses");
        prop_assert_eq!(&req.method, "POST");
        prop_assert_eq!(&req.path, "/v1/solve");
        prop_assert_eq!(req.query, format!("tag={tag}"));
        let value = tag.to_string();
        prop_assert_eq!(req.param("tag"), Some(value.as_str()));
        prop_assert_eq!(req.header("x-fuzz-tag"), Some(value.as_str()));
        prop_assert_eq!(req.header("X-FUZZ-TAG"), Some(value.as_str()));
        prop_assert_eq!(req.body, body);
    }

    /// A pipeline of valid requests comes apart at exactly its framing
    /// boundaries — every body recovered verbatim, in order, with no
    /// leftover — no matter where the chunking splits the stream
    /// (including mid-CRLF and across request boundaries).
    #[test]
    fn pipelined_streams_split_anywhere(
        bodies in vec(vec(32u8..127, 0..40), 1..6),
        chunk in 1usize..9,
    ) {
        let mut stream = Vec::new();
        let texts: Vec<String> = bodies
            .iter()
            .map(|b| b.iter().map(|&c| c as char).collect())
            .collect();
        for body in &texts {
            stream.extend_from_slice(valid_post(body).0.as_slice());
        }
        let (requests, leftover) = parse_stream(&stream, chunk, 4096);
        prop_assert_eq!(requests.len(), texts.len(), "lost or invented a request");
        prop_assert!(leftover.is_empty(), "bytes left behind: {:?}", leftover);
        for (req, body) in requests.iter().zip(&texts) {
            prop_assert_eq!(&req.method, "POST");
            prop_assert_eq!(&req.body, body);
            prop_assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        }
    }

    /// Keep-alive semantics: the HTTP version sets the default and a
    /// `Connection` token list overrides it, in either casing, with
    /// unrelated tokens ignored — and a `Connection: close` anywhere
    /// in a pipeline only marks its own request.
    #[test]
    fn connection_semantics_hold_in_pipelines(
        v11 in any::<bool>(),
        header_idx in 0usize..5,
        upper in any::<bool>(),
        chunk in 1usize..9,
    ) {
        let version = if v11 { "HTTP/1.1" } else { "HTTP/1.0" };
        let values = ["close", "keep-alive", "TE, close", "keep-alive, TE"];
        // Index 4 means "no Connection header at all".
        let header = (header_idx < values.len()).then_some(header_idx);
        let conn_line = match header {
            None => String::new(),
            Some(i) => {
                let v = if upper { values[i].to_ascii_uppercase() } else { values[i].to_string() };
                format!("Connection: {v}\r\n")
            }
        };
        let expected = match header {
            None => v11,
            Some(i) => !values[i].contains("close"),
        };
        let first = format!("GET /healthz {version}\r\n{conn_line}\r\n");
        // A second, plain HTTP/1.1 request rides behind the first.
        let (second, _) = valid_post("tail");
        let mut stream = first.into_bytes();
        stream.extend_from_slice(&second);
        let (requests, leftover) = parse_stream(&stream, chunk, 4096);
        prop_assert_eq!(requests.len(), 2);
        prop_assert!(leftover.is_empty());
        prop_assert_eq!(requests[0].keep_alive, expected, "first request's keep-alive");
        prop_assert!(requests[1].keep_alive, "the tail request is its own framing unit");
        prop_assert_eq!(&requests[1].body, "tail");
    }

    /// `Content-Length` beyond the cap is always the typed 413 error,
    /// regardless of how the head is chunked — the server must be able
    /// to answer before reading an oversized body.
    #[test]
    fn oversized_bodies_are_typed_413s(
        excess in 1usize..10_000,
        max_body in 0usize..512,
        chunk in 1usize..9,
    ) {
        let raw = format!(
            "POST /v1/solve HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            max_body + excess
        );
        let typed = matches!(
            parse(raw.as_bytes(), chunk, max_body),
            Err(RequestError::BodyTooLarge { limit }) if limit == max_body
        );
        prop_assert!(typed, "oversized Content-Length must be the typed 413 error");
    }
}
