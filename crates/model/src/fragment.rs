//! Fragments (contigs) and species.
//!
//! A fragment is a word over the duplicated alphabet — an ordered list
//! of conserved-region occurrences as assembled into a contig. The CSR
//! problem receives one set of fragments per species (`H` and `M` in
//! the paper).

use crate::symbol::{reverse_word, Sym};
use serde::{Deserialize, Serialize};

/// Which of the two genomes a fragment belongs to.
///
/// The paper calls them "h-contigs" (say, human) and "m-contigs" (say,
/// mouse); any two species work.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Species {
    /// The first genome (`H` in the paper).
    H,
    /// The second genome (`M` in the paper).
    M,
}

impl Species {
    /// The other species.
    #[inline]
    pub const fn other(self) -> Self {
        match self {
            Species::H => Species::M,
            Species::M => Species::H,
        }
    }
}

impl std::fmt::Display for Species {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Species::H => write!(f, "H"),
            Species::M => write!(f, "M"),
        }
    }
}

/// Identifier of a fragment: species plus index within that species'
/// fragment list.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FragId {
    /// Which genome the fragment belongs to.
    pub species: Species,
    /// Index into that species' fragment vector.
    pub index: usize,
}

impl FragId {
    /// Fragment `index` of species `H`.
    pub const fn h(index: usize) -> Self {
        FragId {
            species: Species::H,
            index,
        }
    }

    /// Fragment `index` of species `M`.
    pub const fn m(index: usize) -> Self {
        FragId {
            species: Species::M,
            index,
        }
    }
}

impl std::fmt::Debug for FragId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}{}", self.species, self.index)
    }
}

/// A contig: an ordered list of conserved-region occurrences.
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Fragment {
    /// Optional human-readable name (e.g. `"h1"`).
    pub name: String,
    /// The word over `Σ̃` spelled by this contig.
    pub regions: Vec<Sym>,
}

impl Fragment {
    /// Build a fragment from its regions.
    pub fn new(name: impl Into<String>, regions: Vec<Sym>) -> Self {
        Fragment {
            name: name.into(),
            regions,
        }
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether the fragment contains no regions.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    /// The reverse complement `f^R` of the fragment.
    pub fn reversed(&self) -> Fragment {
        Fragment {
            name: format!("{}R", self.name),
            regions: reverse_word(&self.regions),
        }
    }

    /// The subword at `site` coordinates `[lo, hi)`.
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, lo: usize, hi: usize) -> &[Sym] {
        &self.regions[lo..hi]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn species_other_is_involution() {
        assert_eq!(Species::H.other(), Species::M);
        assert_eq!(Species::M.other(), Species::H);
        assert_eq!(Species::H.other().other(), Species::H);
    }

    #[test]
    fn fragment_reversal() {
        let f = Fragment::new("h1", vec![Sym::fwd(0), Sym::fwd(1), Sym::rev(2)]);
        let r = f.reversed();
        assert_eq!(r.regions, vec![Sym::fwd(2), Sym::rev(1), Sym::rev(0)]);
        assert_eq!(r.name, "h1R");
        // double reversal restores the word (name gains a suffix; only
        // the word matters semantically)
        assert_eq!(r.reversed().regions, f.regions);
    }

    #[test]
    fn frag_id_ordering_groups_by_species() {
        let a = FragId::h(5);
        let b = FragId::m(0);
        assert!(a < b, "all H fragments sort before M fragments");
    }

    #[test]
    fn slice_is_site_view() {
        let f = Fragment::new("f", vec![Sym::fwd(3), Sym::fwd(4), Sym::fwd(5)]);
        assert_eq!(f.slice(1, 3), &[Sym::fwd(4), Sym::fwd(5)]);
        assert_eq!(f.slice(0, 0), &[] as &[Sym]);
    }
}
