//! Symbols of the duplicated alphabet `Σ̃ = Σ ∪ Σ^R`.
//!
//! The paper models each conserved region as a symbol `a ∈ Σ` whose
//! reverse complement is a distinct symbol `a^R ∈ Σ^R`, with the
//! involution properties listed in §2.1:
//!
//! * `Σ ∩ Σ^R = ∅`;
//! * `(a^R)^R = a`;
//! * `(uv)^R = v^R u^R` for words (see [`reverse_word`]).
//!
//! We represent a symbol as a region identifier plus an orientation
//! bit, which encodes the duplicated alphabet compactly and makes the
//! involution a bit flip.

use serde::{Deserialize, Serialize};

/// Identifier of a conserved region (an element of the base alphabet
/// `Σ`, before duplication).
pub type RegionId = u32;

/// A symbol of the duplicated alphabet: a conserved region in either
/// its normal (`rev == false`) or reversed (`rev == true`) occurrence.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Sym {
    /// The underlying region (element of `Σ`).
    pub id: RegionId,
    /// Whether this occurrence is the reverse complement `a^R`.
    pub rev: bool,
}

impl Sym {
    /// A normal-orientation occurrence of region `id`.
    #[inline]
    pub const fn fwd(id: RegionId) -> Self {
        Sym { id, rev: false }
    }

    /// A reversed occurrence `a^R` of region `id`.
    #[inline]
    pub const fn rev(id: RegionId) -> Self {
        Sym { id, rev: true }
    }

    /// The reversal involution `a ↦ a^R`.
    #[inline]
    pub const fn reversed(self) -> Self {
        Sym {
            id: self.id,
            rev: !self.rev,
        }
    }
}

impl std::fmt::Debug for Sym {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.rev {
            write!(f, "{}R", self.id)
        } else {
            write!(f, "{}", self.id)
        }
    }
}

/// Word reversal `(a_1 … a_n)^R = a_n^R … a_1^R`.
pub fn reverse_word(word: &[Sym]) -> Vec<Sym> {
    word.iter().rev().map(|s| s.reversed()).collect()
}

/// In-place word reversal; equivalent to [`reverse_word`].
pub fn reverse_word_in_place(word: &mut [Sym]) {
    word.reverse();
    for s in word.iter_mut() {
        *s = s.reversed();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_is_involution() {
        let a = Sym::fwd(7);
        assert_eq!(a.reversed().reversed(), a);
        let b = Sym::rev(3);
        assert_eq!(b.reversed().reversed(), b);
    }

    #[test]
    fn forward_and_reverse_are_distinct() {
        // Σ ∩ Σ^R = ∅: a symbol never equals its own reversal.
        for id in 0..100 {
            assert_ne!(Sym::fwd(id), Sym::rev(id));
        }
    }

    #[test]
    fn word_reversal_antihomomorphism() {
        // (uv)^R = v^R u^R
        let u = vec![Sym::fwd(1), Sym::rev(2)];
        let v = vec![Sym::fwd(3)];
        let mut uv = u.clone();
        uv.extend_from_slice(&v);
        let mut vr_ur = reverse_word(&v);
        vr_ur.extend(reverse_word(&u));
        assert_eq!(reverse_word(&uv), vr_ur);
    }

    #[test]
    fn word_reversal_involution() {
        let w = vec![Sym::fwd(0), Sym::rev(5), Sym::fwd(9), Sym::fwd(9)];
        assert_eq!(reverse_word(&reverse_word(&w)), w);
    }

    #[test]
    fn in_place_matches_allocating() {
        let w = vec![Sym::fwd(4), Sym::rev(1), Sym::fwd(2)];
        let mut w2 = w.clone();
        reverse_word_in_place(&mut w2);
        assert_eq!(w2, reverse_word(&w));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Sym::fwd(12)), "12");
        assert_eq!(format!("{:?}", Sym::rev(12)), "12R");
    }
}
