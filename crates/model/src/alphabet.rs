//! Region-name interner.
//!
//! The paper's examples name conserved regions `a, b, c, …`; real
//! pipelines name them by genomic coordinates. The [`Alphabet`] maps
//! such names to dense [`RegionId`]s and back, so the rest of the
//! library can work with integers.

use crate::symbol::{RegionId, Sym};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional mapping between human-readable region names and
/// dense [`RegionId`]s.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Alphabet {
    names: Vec<String>,
    #[serde(skip)]
    index: HashMap<String, RegionId>,
}

impl Alphabet {
    /// An empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its (possibly pre-existing) id.
    pub fn intern(&mut self, name: &str) -> RegionId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = self.names.len() as RegionId;
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), id);
        id
    }

    /// Intern `name` and return it as a forward-orientation symbol.
    pub fn sym(&mut self, name: &str) -> Sym {
        Sym::fwd(self.intern(name))
    }

    /// Intern `name` and return its reversed symbol `name^R`.
    pub fn sym_rev(&mut self, name: &str) -> Sym {
        Sym::rev(self.intern(name))
    }

    /// Look up an already-interned name.
    pub fn get(&self, name: &str) -> Option<RegionId> {
        self.index.get(name).copied()
    }

    /// The name of region `id`, if `id` was produced by this alphabet.
    pub fn name(&self, id: RegionId) -> Option<&str> {
        self.names.get(id as usize).map(|s| s.as_str())
    }

    /// Render a symbol as `name` or `nameR`.
    pub fn render(&self, sym: Sym) -> String {
        let base = self
            .name(sym.id)
            .map(|s| s.to_owned())
            .unwrap_or_else(|| format!("#{}", sym.id));
        if sym.rev {
            format!("{base}R")
        } else {
            base
        }
    }

    /// Number of interned regions.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no region has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Rebuild the name→id index (needed after deserialisation, which
    /// skips the redundant map).
    pub fn rebuild_index(&mut self) {
        self.index = self
            .names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), i as RegionId))
            .collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut al = Alphabet::new();
        let a = al.intern("a");
        let b = al.intern("b");
        assert_ne!(a, b);
        assert_eq!(al.intern("a"), a);
        assert_eq!(al.len(), 2);
    }

    #[test]
    fn roundtrip_names() {
        let mut al = Alphabet::new();
        let id = al.intern("exon-7");
        assert_eq!(al.name(id), Some("exon-7"));
        assert_eq!(al.get("exon-7"), Some(id));
        assert_eq!(al.get("missing"), None);
        assert_eq!(al.name(99), None);
    }

    #[test]
    fn render_symbols() {
        let mut al = Alphabet::new();
        let s = al.sym("d");
        assert_eq!(al.render(s), "d");
        assert_eq!(al.render(s.reversed()), "dR");
        assert_eq!(al.render(Sym::fwd(42)), "#42");
    }

    #[test]
    fn rebuild_index_restores_lookup() {
        let mut al = Alphabet::new();
        al.intern("x");
        al.intern("y");
        let mut copy = Alphabet {
            names: al.names.clone(),
            index: HashMap::new(),
        };
        assert_eq!(copy.get("x"), None);
        copy.rebuild_index();
        assert_eq!(copy.get("x"), al.get("x"));
        assert_eq!(copy.get("y"), al.get("y"));
    }
}
