//! Matches and match sets.
//!
//! A *match* (Definition 2) pairs a site from an H fragment with a site
//! from an M fragment, together with the relative orientation that the
//! match-score maximisation chose (Definition 4) and the score itself.
//! A *consistent* set of matches is one producible from a conjecture
//! pair; [`crate::consistency`] decides consistency and rebuilds the
//! conjecture.

use crate::fragment::{FragId, Species};
use crate::score::Orient;
use crate::site::{End, Site, SiteClass};
use crate::Score;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Index of a match within a [`MatchSet`].
pub type MatchId = usize;

/// Structural kind of a match, derived from the site classifications
/// (Definition 3 and Fig. 6).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MatchKind {
    /// One side is a whole fragment (that fragment is the *plug*;
    /// `full_side` names the species whose site is full). When both
    /// sides are full we record the M side as the plug, matching the
    /// paper's convention that a 2-fragment island has one simple and
    /// one multiple fragment.
    Full {
        /// Species whose site covers its whole fragment (the plug).
        full_side: Species,
    },
    /// Both sides are proper borders: a staircase overlap joining the
    /// given original ends of the two fragments.
    Border {
        /// Fragment end claimed on the H side.
        h_end: End,
        /// Fragment end claimed on the M side.
        m_end: End,
    },
}

/// A scored pairing of an H site with an M site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Match {
    /// Site on the H-species fragment.
    pub h: Site,
    /// Site on the M-species fragment.
    pub m: Site,
    /// Relative orientation the match score chose (Definition 4):
    /// `Reversed` means the M side aligns as its reverse complement.
    pub orient: Orient,
    /// The match score `MS(h̄, m̄)`.
    pub score: Score,
}

impl Match {
    /// Build a match, normalising so `h` is the H-species site.
    pub fn new(h: Site, m: Site, orient: Orient, score: Score) -> Self {
        debug_assert_eq!(h.frag.species, Species::H, "first site must be H-species");
        debug_assert_eq!(m.frag.species, Species::M, "second site must be M-species");
        Match {
            h,
            m,
            orient,
            score,
        }
    }

    /// The site this match places on the given species' side.
    pub fn site_on_species(&self, species: Species) -> Option<Site> {
        match species {
            Species::H => Some(self.h),
            Species::M => Some(self.m),
        }
    }

    /// The site this match places on `frag`, if any.
    pub fn site_on(&self, frag: FragId) -> Option<Site> {
        if self.h.frag == frag {
            Some(self.h)
        } else if self.m.frag == frag {
            Some(self.m)
        } else {
            None
        }
    }

    /// The site on the opposite fragment of `frag`.
    pub fn other_site(&self, frag: FragId) -> Option<Site> {
        if self.h.frag == frag {
            Some(self.m)
        } else if self.m.frag == frag {
            Some(self.h)
        } else {
            None
        }
    }

    /// Classify the match given the two fragment lengths
    /// (Definition 3 / Fig. 6 precedence: full beats border).
    ///
    /// Returns `None` when the match is neither full nor a valid
    /// border–border pairing (e.g. an inner–inner pairing) — such a
    /// match can never appear in a consistent set.
    pub fn kind(&self, h_len: usize, m_len: usize) -> Option<MatchKind> {
        let hc = self.h.classify(h_len);
        let mc = self.m.classify(m_len);
        match (hc, mc) {
            // Both full: by convention the M fragment is the plug.
            (SiteClass::Full, SiteClass::Full) => Some(MatchKind::Full {
                full_side: Species::M,
            }),
            (SiteClass::Full, _) => Some(MatchKind::Full {
                full_side: Species::H,
            }),
            (_, SiteClass::Full) => Some(MatchKind::Full {
                full_side: Species::M,
            }),
            (SiteClass::Border(h_end), SiteClass::Border(m_end)) => {
                Some(MatchKind::Border { h_end, m_end })
            }
            _ => None,
        }
    }
}

/// A set of matches, the working representation of a CSR solution
/// ("We will maintain the solution to a CSR problem instance as a
/// consistent set of matches", §4.1).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct MatchSet {
    matches: Vec<Match>,
}

impl MatchSet {
    /// The empty match set (the improvement algorithms' start state).
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from a vector of matches.
    pub fn from_matches(matches: Vec<Match>) -> Self {
        MatchSet { matches }
    }

    /// Add a match, returning its id.
    pub fn push(&mut self, m: Match) -> MatchId {
        self.matches.push(m);
        self.matches.len() - 1
    }

    /// Remove a set of matches by id (ids of the remaining matches are
    /// renumbered — use the returned mapping if needed).
    pub fn remove_many(&mut self, ids: &[MatchId]) {
        let mut drop = vec![false; self.matches.len()];
        for &id in ids {
            drop[id] = true;
        }
        let mut keep = Vec::with_capacity(self.matches.len());
        for (i, m) in self.matches.drain(..).enumerate() {
            if !drop[i] {
                keep.push(m);
            }
        }
        self.matches = keep;
    }

    /// All matches with ids.
    pub fn iter(&self) -> impl Iterator<Item = (MatchId, &Match)> {
        self.matches.iter().enumerate()
    }

    /// The matches as a slice.
    pub fn as_slice(&self) -> &[Match] {
        &self.matches
    }

    /// Mutable access to a match (used by site restriction during
    /// preparation; callers must re-establish consistency).
    pub fn get_mut(&mut self, id: MatchId) -> Option<&mut Match> {
        self.matches.get_mut(id)
    }

    /// Number of matches.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Total score `Score(S) = Σ_ω MS(ω)`.
    pub fn total_score(&self) -> Score {
        self.matches.iter().map(|m| m.score).sum()
    }

    /// Ids of matches that place a site on `frag`.
    pub fn matches_on(&self, frag: FragId) -> Vec<MatchId> {
        self.iter()
            .filter(|(_, m)| m.site_on(frag).is_some())
            .map(|(id, _)| id)
            .collect()
    }

    /// Contribution `Cb(f, S)` of fragment `f`: the sum of scores of
    /// all matches involving `f` (Definition 5).
    pub fn contribution(&self, frag: FragId) -> Score {
        self.matches
            .iter()
            .filter(|m| m.site_on(frag).is_some())
            .map(|m| m.score)
            .sum()
    }

    /// Group matched sites by fragment: `frag → [(MatchId, Site)]`,
    /// each list sorted by site start.
    pub fn sites_by_fragment(&self) -> HashMap<FragId, Vec<(MatchId, Site)>> {
        let mut map: HashMap<FragId, Vec<(MatchId, Site)>> = HashMap::new();
        for (id, m) in self.iter() {
            map.entry(m.h.frag).or_default().push((id, m.h));
            map.entry(m.m.frag).or_default().push((id, m.m));
        }
        for sites in map.values_mut() {
            sites.sort_by_key(|(_, s)| (s.lo, s.hi));
        }
        map
    }

    /// Fragments participating in more than one match (`Mult(S)` of
    /// Definition 5) — for islands of ≥ 3 fragments. For the precise
    /// island-aware notion use [`crate::consistency::check_consistency`].
    pub fn multi_fragments(&self) -> Vec<FragId> {
        let mut counts: HashMap<FragId, usize> = HashMap::new();
        for m in &self.matches {
            *counts.entry(m.h.frag).or_default() += 1;
            *counts.entry(m.m.frag).or_default() += 1;
        }
        let mut v: Vec<FragId> = counts
            .into_iter()
            .filter(|&(_, c)| c > 1)
            .map(|(f, _)| f)
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site_h(i: usize, lo: usize, hi: usize) -> Site {
        Site::new(FragId::h(i), lo, hi)
    }
    fn site_m(i: usize, lo: usize, hi: usize) -> Site {
        Site::new(FragId::m(i), lo, hi)
    }

    #[test]
    fn kind_classification_full_precedence() {
        // Fig. 6: a match involving a full site is a full match even if
        // the other side is a border site.
        let m = Match::new(site_h(0, 0, 3), site_m(0, 1, 4), Orient::Same, 5);
        assert_eq!(
            m.kind(3, 6),
            Some(MatchKind::Full {
                full_side: Species::H
            })
        );
        let m2 = Match::new(site_h(0, 2, 5), site_m(0, 0, 4), Orient::Same, 5);
        assert_eq!(
            m2.kind(9, 4),
            Some(MatchKind::Full {
                full_side: Species::M
            })
        );
        // Border–border staircase.
        let m3 = Match::new(site_h(0, 2, 5), site_m(0, 0, 2), Orient::Same, 5);
        assert_eq!(
            m3.kind(5, 7),
            Some(MatchKind::Border {
                h_end: End::Right,
                m_end: End::Left
            })
        );
        // Inner–border is not realisable.
        let m4 = Match::new(site_h(0, 1, 4), site_m(0, 0, 2), Orient::Same, 5);
        assert_eq!(m4.kind(6, 7), None);
    }

    #[test]
    fn contribution_sums_incident_scores() {
        let mut s = MatchSet::new();
        s.push(Match::new(
            site_h(0, 0, 1),
            site_m(0, 0, 1),
            Orient::Same,
            4,
        ));
        s.push(Match::new(
            site_h(0, 1, 2),
            site_m(1, 0, 1),
            Orient::Same,
            5,
        ));
        s.push(Match::new(
            site_h(1, 0, 1),
            site_m(1, 1, 2),
            Orient::Same,
            2,
        ));
        assert_eq!(s.contribution(FragId::h(0)), 9);
        assert_eq!(s.contribution(FragId::m(1)), 7);
        assert_eq!(s.contribution(FragId::m(7)), 0);
        assert_eq!(s.total_score(), 11);
    }

    #[test]
    fn multi_fragments_detects_multiplicity() {
        let mut s = MatchSet::new();
        s.push(Match::new(
            site_h(0, 0, 1),
            site_m(0, 0, 1),
            Orient::Same,
            1,
        ));
        s.push(Match::new(
            site_h(0, 1, 2),
            site_m(1, 0, 1),
            Orient::Same,
            1,
        ));
        assert_eq!(s.multi_fragments(), vec![FragId::h(0)]);
    }

    #[test]
    fn remove_many_keeps_order() {
        let mut s = MatchSet::new();
        let a = Match::new(site_h(0, 0, 1), site_m(0, 0, 1), Orient::Same, 1);
        let b = Match::new(site_h(1, 0, 1), site_m(1, 0, 1), Orient::Same, 2);
        let c = Match::new(site_h(2, 0, 1), site_m(2, 0, 1), Orient::Same, 3);
        s.push(a);
        s.push(b);
        s.push(c);
        s.remove_many(&[1]);
        assert_eq!(s.as_slice(), &[a, c]);
        assert_eq!(s.total_score(), 4);
    }

    #[test]
    fn sites_by_fragment_sorted() {
        let mut s = MatchSet::new();
        s.push(Match::new(
            site_h(0, 4, 6),
            site_m(0, 0, 2),
            Orient::Same,
            1,
        ));
        s.push(Match::new(
            site_h(0, 0, 2),
            site_m(1, 0, 2),
            Orient::Same,
            1,
        ));
        let by = s.sites_by_fragment();
        let sites: Vec<usize> = by[&FragId::h(0)].iter().map(|(_, s)| s.lo).collect();
        assert_eq!(sites, vec![0, 4]);
    }
}
