//! Inconsistency diagnoses for match sets.
//!
//! Fig. 3 of the paper shows that real alignment data is frequently
//! inconsistent with every orientation/ordering of the contigs. The
//! consistency checker reports *why* a match set cannot be produced by
//! any conjecture pair, with enough detail for callers to repair it.

use crate::fragment::FragId;
use crate::matchset::MatchId;
use crate::site::{End, Site};

/// Why a match set is not consistent (cannot arise from any conjecture
/// pair per Definition 2).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inconsistency {
    /// A match pairs two sites of the same species.
    SameSpecies {
        /// The offending match.
        m: MatchId,
    },
    /// A site extends beyond its fragment.
    SiteOutOfBounds {
        /// The out-of-range site.
        site: Site,
        /// Length of the fragment it claims to live on.
        frag_len: usize,
    },
    /// Two matched sites on one fragment overlap.
    OverlappingSites {
        /// First match involved.
        m1: MatchId,
        /// Second match involved.
        m2: MatchId,
        /// First overlapping site.
        site1: Site,
        /// Second overlapping site.
        site2: Site,
    },
    /// A match with no full side has an inner site: inner sites can
    /// only be covered by whole opposite fragments (see DESIGN.md §4).
    InnerSiteNotFull {
        /// The offending match.
        m: MatchId,
        /// Its inner site.
        inner: Site,
    },
    /// A border–border match whose ends and orientation cannot be made
    /// flush in any layout (the staircase condition `E_h ≠ E_m ⊕ r`
    /// fails).
    BorderEndMismatch {
        /// The offending match.
        m: MatchId,
        /// End claimed on the H fragment.
        h_end: End,
        /// End claimed on the M fragment.
        m_end: End,
    },
    /// Two border matches claim the same fragment end.
    DoubleBorderEnd {
        /// The doubly claimed fragment.
        frag: FragId,
        /// The doubly claimed end.
        end: End,
        /// First claimant.
        m1: MatchId,
        /// Second claimant.
        m2: MatchId,
    },
    /// Border matches form a cycle of fragments, which no linear
    /// layout can realise.
    BorderCycle {
        /// The match that closes the cycle.
        m: MatchId,
    },
}

impl std::fmt::Display for Inconsistency {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Inconsistency::SameSpecies { m } => {
                write!(f, "match {m:?} pairs two sites of the same species")
            }
            Inconsistency::SiteOutOfBounds { site, frag_len } => {
                write!(f, "site {site:?} exceeds fragment length {frag_len}")
            }
            Inconsistency::OverlappingSites { m1, m2, site1, site2 } => write!(
                f,
                "matches {m1:?} and {m2:?} use overlapping sites {site1:?} and {site2:?}"
            ),
            Inconsistency::InnerSiteNotFull { m, inner } => write!(
                f,
                "match {m:?} pairs inner site {inner:?} with a non-full site"
            ),
            Inconsistency::BorderEndMismatch { m, h_end, m_end } => write!(
                f,
                "border match {m:?} joins ends {h_end:?}/{m_end:?} with an orientation that cannot be laid out flush"
            ),
            Inconsistency::DoubleBorderEnd { frag, end, m1, m2 } => write!(
                f,
                "fragment {frag:?} end {end:?} is claimed by two border matches {m1:?} and {m2:?}"
            ),
            Inconsistency::BorderCycle { m } => {
                write!(f, "border match {m:?} closes a cycle of fragments")
            }
        }
    }
}

impl std::error::Error for Inconsistency {}
