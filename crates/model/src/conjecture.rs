//! Conjecture pairs: explicit two-row layouts (Definition 1).
//!
//! A conjecture for a fragment set is built by padding each fragment
//! with `⊥`, optionally reversing it, and concatenating the padded
//! sequences in some order. A *conjecture pair* stacks an H conjecture
//! over an M conjecture; its score is the column-wise sum of `σ`.
//!
//! This module stores the layout explicitly — per-row fragment spans
//! (which `⊥` belongs to which padded sequence matters when deriving
//! matches, because pieces are split at padded-sequence ends) — and
//! implements Definition 2: deriving the match set of a conjecture
//! pair.

use crate::fragment::{FragId, Species};
use crate::instance::Instance;
use crate::matchset::{Match, MatchSet};
use crate::score::Orient;
use crate::site::Site;
use crate::symbol::Sym;
use crate::Score;
use serde::{Deserialize, Serialize};

/// A fragment placed on a row: orientation plus the half-open column
/// span of its padded sequence (padding included).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedFragment {
    /// Which fragment.
    pub frag: FragId,
    /// Placed as its reverse complement?
    pub reversed: bool,
    /// First column of the padded sequence.
    pub span_start: usize,
    /// One past the last column of the padded sequence.
    pub span_end: usize,
}

/// One row of a conjecture pair: placed fragments in left-to-right
/// order whose spans partition the row's columns.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Placement of every fragment of the species, in layout order.
    pub placed: Vec<PlacedFragment>,
}

/// One column of the stacked pair: for each row, either `⊥` (`None`)
/// or a region occurrence given as `(fragment, original index)`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Column {
    /// H-row content.
    pub h: Option<(FragId, usize)>,
    /// M-row content.
    pub m: Option<(FragId, usize)>,
}

/// An explicit conjecture pair `(h, m) ∈ Conj(H) × Conj(M)`.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ConjecturePair {
    /// Layout of the H conjecture.
    pub h_row: Row,
    /// Layout of the M conjecture.
    pub m_row: Row,
    /// The stacked columns; both rows have this common length.
    pub columns: Vec<Column>,
}

impl ConjecturePair {
    /// The symbol a cell displays: the fragment's region, reversed if
    /// the fragment was placed reversed.
    pub fn cell_sym(inst: &Instance, cell: (FragId, usize), reversed: bool) -> Sym {
        let sym = inst.fragment(cell.0).regions[cell.1];
        if reversed {
            sym.reversed()
        } else {
            sym
        }
    }

    fn row(&self, species: Species) -> &Row {
        match species {
            Species::H => &self.h_row,
            Species::M => &self.m_row,
        }
    }

    /// Orientation flag of a placed fragment.
    pub fn placement(&self, frag: FragId) -> Option<&PlacedFragment> {
        self.row(frag.species)
            .placed
            .iter()
            .find(|p| p.frag == frag)
    }

    /// Score of the conjecture pair: `Σ_i σ(a_i, b_i)` with `⊥`
    /// scoring 0 (Definition 1).
    pub fn score(&self, inst: &Instance) -> Score {
        let mut total = 0;
        for col in &self.columns {
            if let (Some(hc), Some(mc)) = (col.h, col.m) {
                let h_rev = self.placement(hc.0).map(|p| p.reversed).unwrap_or(false);
                let m_rev = self.placement(mc.0).map(|p| p.reversed).unwrap_or(false);
                let a = Self::cell_sym(inst, hc, h_rev);
                let b = Self::cell_sym(inst, mc, m_rev);
                total += inst.sigma.score(a, b);
            }
        }
        total
    }

    /// Validate the structural invariants of Definition 1: spans
    /// partition the columns per (non-empty) row, every fragment of the
    /// instance appears exactly once and completely, and symbols appear
    /// in laid order within their span.
    pub fn validate(&self, inst: &Instance) -> Result<(), String> {
        for (species, row) in [(Species::H, &self.h_row), (Species::M, &self.m_row)] {
            let expected: Vec<FragId> = inst.frag_ids(species).collect();
            if row.placed.len() != expected.len() {
                return Err(format!(
                    "{species} row places {} fragments, instance has {}",
                    row.placed.len(),
                    expected.len()
                ));
            }
            let mut seen: Vec<FragId> = row.placed.iter().map(|p| p.frag).collect();
            seen.sort();
            if seen != expected {
                return Err(format!(
                    "{species} row does not place every fragment exactly once"
                ));
            }
            // Spans partition [0, columns).
            let mut cursor = 0;
            for p in &row.placed {
                if p.span_start != cursor {
                    return Err(format!("{species} row span gap before {:?}", p.frag));
                }
                if p.span_end < p.span_start {
                    return Err(format!("inverted span for {:?}", p.frag));
                }
                cursor = p.span_end;
            }
            if !row.placed.is_empty() && cursor != self.columns.len() {
                return Err(format!(
                    "{species} row spans end at {cursor}, expected {}",
                    self.columns.len()
                ));
            }
            // Each fragment's cells: exactly its regions, laid order,
            // inside its span.
            for p in &row.placed {
                let n = inst.frag_len(p.frag);
                let mut cells = Vec::new();
                for (c, col) in self.columns.iter().enumerate() {
                    let cell = match species {
                        Species::H => col.h,
                        Species::M => col.m,
                    };
                    if let Some((f, idx)) = cell {
                        if f == p.frag {
                            if c < p.span_start || c >= p.span_end {
                                return Err(format!(
                                    "cell of {:?} at column {c} outside span",
                                    p.frag
                                ));
                            }
                            cells.push(idx);
                        }
                    }
                }
                let want: Vec<usize> = if p.reversed {
                    (0..n).rev().collect()
                } else {
                    (0..n).collect()
                };
                if cells != want {
                    return Err(format!(
                        "fragment {:?} cells {cells:?} are not the laid order {want:?}",
                        p.frag
                    ));
                }
            }
        }
        Ok(())
    }

    /// Definition 2: derive the match set of this conjecture pair.
    ///
    /// The stacked word is split at the ends of every padded sequence
    /// (both rows); each resulting piece with symbols on both rows
    /// becomes a match whose score is the piece's realised column
    /// score. `Score(derived set) == self.score(inst)` always holds
    /// (Remark 1).
    pub fn derive_matches(&self, inst: &Instance) -> MatchSet {
        // Collect split points: span boundaries from both rows.
        let mut cuts: Vec<usize> = vec![0, self.columns.len()];
        for row in [&self.h_row, &self.m_row] {
            for p in &row.placed {
                cuts.push(p.span_start);
                cuts.push(p.span_end);
            }
        }
        cuts.sort_unstable();
        cuts.dedup();

        let mut out = MatchSet::new();
        for w in cuts.windows(2) {
            let (lo, hi) = (w[0], w[1]);
            if lo >= hi {
                continue;
            }
            // Gather the symbol cells of each row inside the piece.
            let mut h_cells: Vec<(FragId, usize)> = Vec::new();
            let mut m_cells: Vec<(FragId, usize)> = Vec::new();
            let mut piece_score: Score = 0;
            for col in &self.columns[lo..hi] {
                if let Some(c) = col.h {
                    h_cells.push(c);
                }
                if let Some(c) = col.m {
                    m_cells.push(c);
                }
                if let (Some(hc), Some(mc)) = (col.h, col.m) {
                    let h_rev = self.placement(hc.0).map(|p| p.reversed).unwrap_or(false);
                    let m_rev = self.placement(mc.0).map(|p| p.reversed).unwrap_or(false);
                    piece_score += inst.sigma.score(
                        Self::cell_sym(inst, hc, h_rev),
                        Self::cell_sym(inst, mc, m_rev),
                    );
                }
            }
            let (Some(&(hf, _)), Some(&(mf, _))) = (h_cells.first(), m_cells.first()) else {
                continue; // piece with symbols on at most one row
            };
            // A piece where no column pairs two symbols is vacuous: it
            // only stacks one row's symbols against the other's padding
            // and contributes nothing; Definition 2 lets us drop it.
            let paired = self.columns[lo..hi]
                .iter()
                .any(|c| c.h.is_some() && c.m.is_some());
            if !paired {
                continue;
            }
            debug_assert!(
                h_cells.iter().all(|&(f, _)| f == hf),
                "piece crosses H fragments"
            );
            debug_assert!(
                m_cells.iter().all(|&(f, _)| f == mf),
                "piece crosses M fragments"
            );
            let h_site = cells_site(hf, &h_cells);
            let m_site = cells_site(mf, &m_cells);
            let h_rev = self.placement(hf).map(|p| p.reversed).unwrap_or(false);
            let m_rev = self.placement(mf).map(|p| p.reversed).unwrap_or(false);
            out.push(Match::new(
                h_site,
                m_site,
                Orient::from_reversed(h_rev ^ m_rev),
                piece_score,
            ));
        }
        out
    }

    /// Pretty-print the pair with region names, one line per row, for
    /// examples and debugging.
    pub fn render(&self, inst: &Instance) -> String {
        let mut top = Vec::new();
        let mut bot = Vec::new();
        for col in &self.columns {
            let cell = |c: Option<(FragId, usize)>| -> String {
                match c {
                    None => "⊥".to_owned(),
                    Some(cell) => {
                        let rev = self.placement(cell.0).map(|p| p.reversed).unwrap_or(false);
                        inst.alphabet.render(Self::cell_sym(inst, cell, rev))
                    }
                }
            };
            top.push(cell(col.h));
            bot.push(cell(col.m));
        }
        let width: Vec<usize> = top
            .iter()
            .zip(&bot)
            .map(|(a, b)| a.chars().count().max(b.chars().count()))
            .collect();
        let fmt = |cells: &[String]| {
            cells
                .iter()
                .zip(&width)
                .map(|(c, w)| format!("{c:>width$}", width = w))
                .collect::<Vec<_>>()
                .join(" ")
        };
        format!("H: {}\nM: {}", fmt(&top), fmt(&bot))
    }
}

/// Incrementally assembles a [`ConjecturePair`] column by column.
///
/// Callers emit columns left to right; the assembler tracks each
/// fragment's first/last symbol column and orientation, then derives
/// the per-row spans (a fragment's padded span runs from the previous
/// fragment's span end to just past its own last symbol; the final
/// fragment absorbs the tail). Used by the consistency layout builder
/// and by the 1-CSR solution mapper.
#[derive(Debug, Default)]
pub struct PairAssembler {
    columns: Vec<Column>,
    extents: std::collections::HashMap<FragId, (usize, usize, bool)>,
    order_h: Vec<FragId>,
    order_m: Vec<FragId>,
}

impl PairAssembler {
    /// Start an empty assembly.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of columns emitted so far.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// Whether no column has been emitted.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    fn note(&mut self, frag: FragId, col: usize, reversed: bool) {
        match self.extents.entry(frag) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let v = e.get_mut();
                v.0 = v.0.min(col);
                v.1 = v.1.max(col);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert((col, col, reversed));
                match frag.species {
                    Species::H => self.order_h.push(frag),
                    Species::M => self.order_m.push(frag),
                }
            }
        }
    }

    /// Append a column. Cells are `(fragment, original region index,
    /// laid reversed)`.
    pub fn push(&mut self, h: Option<(FragId, usize, bool)>, m: Option<(FragId, usize, bool)>) {
        let col = self.columns.len();
        if let Some((f, _, rev)) = h {
            self.note(f, col, rev);
        }
        if let Some((f, _, rev)) = m {
            self.note(f, col, rev);
        }
        self.columns.push(Column {
            h: h.map(|(f, i, _)| (f, i)),
            m: m.map(|(f, i, _)| (f, i)),
        });
    }

    /// Whether a fragment has been emitted.
    pub fn contains(&self, frag: FragId) -> bool {
        self.extents.contains_key(&frag)
    }

    /// Finish: derive spans and produce the pair.
    pub fn finish(self) -> ConjecturePair {
        let total = self.columns.len();
        let mut pair = ConjecturePair {
            columns: self.columns,
            ..Default::default()
        };
        for (species, order) in [(Species::H, &self.order_h), (Species::M, &self.order_m)] {
            let mut placed = Vec::new();
            let mut cursor = 0;
            for (i, &f) in order.iter().enumerate() {
                let (_, last, rev) = self.extents[&f];
                let span_end = if i + 1 == order.len() {
                    total
                } else {
                    last + 1
                };
                placed.push(PlacedFragment {
                    frag: f,
                    reversed: rev,
                    span_start: cursor,
                    span_end,
                });
                cursor = span_end;
            }
            match species {
                Species::H => pair.h_row = Row { placed },
                Species::M => pair.m_row = Row { placed },
            }
        }
        pair
    }
}

/// Convert the cells of one row inside a piece into a site in original
/// fragment coordinates.
fn cells_site(frag: FragId, cells: &[(FragId, usize)]) -> Site {
    let min = cells.iter().map(|&(_, i)| i).min().expect("non-empty");
    let max = cells.iter().map(|&(_, i)| i).max().expect("non-empty");
    Site::new(frag, min, max + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::paper_example;

    /// Hand-build the solution of Fig. 4/5: H row `⟨a b c | dR⟩`,
    /// M row `⟨s t | u v⟩`, aligned as
    /// `a b c dR` over `s t u v` with b–t both present (scoring 0 in
    /// this orientation) — the paper instead deletes b and t; we model
    /// deletion by leaving both in the rows as unpaired columns.
    fn fig5_pair(_inst: &Instance) -> ConjecturePair {
        // Columns: (a,s) (b,t) (c,u) (dR,v)
        // h2 = ⟨d⟩ reversed: cell index 0 with reversed flag.
        let h1 = FragId::h(0);
        let h2 = FragId::h(1);
        let m1 = FragId::m(0);
        let m2 = FragId::m(1);
        ConjecturePair {
            h_row: Row {
                placed: vec![
                    PlacedFragment {
                        frag: h1,
                        reversed: false,
                        span_start: 0,
                        span_end: 3,
                    },
                    PlacedFragment {
                        frag: h2,
                        reversed: true,
                        span_start: 3,
                        span_end: 4,
                    },
                ],
            },
            m_row: Row {
                placed: vec![
                    PlacedFragment {
                        frag: m1,
                        reversed: false,
                        span_start: 0,
                        span_end: 2,
                    },
                    PlacedFragment {
                        frag: m2,
                        reversed: false,
                        span_start: 2,
                        span_end: 4,
                    },
                ],
            },
            columns: vec![
                Column {
                    h: Some((h1, 0)),
                    m: Some((m1, 0)),
                },
                Column {
                    h: Some((h1, 1)),
                    m: Some((m1, 1)),
                },
                Column {
                    h: Some((h1, 2)),
                    m: Some((m2, 0)),
                },
                Column {
                    h: Some((h2, 0)),
                    m: Some((m2, 1)),
                },
            ],
        }
    }

    #[test]
    fn fig4_solution_scores_11() {
        let inst = paper_example();
        let pair = fig5_pair(&inst);
        pair.validate(&inst).unwrap();
        // σ(a,s) + σ(b,t) + σ(c,u) + σ(d^R,v) = 4 + 0 + 5 + 2 = 11
        assert_eq!(pair.score(&inst), 11);
    }

    #[test]
    fn fig5_derived_matches() {
        let inst = paper_example();
        let pair = fig5_pair(&inst);
        let derived = pair.derive_matches(&inst);
        // Fig. 5: ω1 = (h1(1,2), m1(1,2)), ω2 = (h1(3,3), m2(1,1)),
        // ω3 = (h2^R(1,1), m2(2,2)).
        assert_eq!(derived.len(), 3);
        assert_eq!(derived.total_score(), pair.score(&inst));
        let sites: Vec<(Site, Site, Orient)> =
            derived.iter().map(|(_, m)| (m.h, m.m, m.orient)).collect();
        assert!(sites.contains(&(
            Site::new(FragId::h(0), 0, 2),
            Site::new(FragId::m(0), 0, 2),
            Orient::Same
        )));
        assert!(sites.contains(&(
            Site::new(FragId::h(0), 2, 3),
            Site::new(FragId::m(1), 0, 1),
            Orient::Same
        )));
        assert!(sites.contains(&(
            Site::new(FragId::h(1), 0, 1),
            Site::new(FragId::m(1), 1, 2),
            Orient::Reversed
        )));
    }

    #[test]
    fn derive_matches_score_equals_pair_score() {
        // Remark 1, on a pair with padding and unmatched regions.
        let inst = paper_example();
        let h1 = FragId::h(0);
        let h2 = FragId::h(1);
        let m1 = FragId::m(0);
        let m2 = FragId::m(1);
        // H: a  b  c  ⊥  d      (h2 forward this time)
        // M: s  ⊥  ⊥  u  v      (t deleted by padding m1)
        let pair = ConjecturePair {
            h_row: Row {
                placed: vec![
                    PlacedFragment {
                        frag: h1,
                        reversed: false,
                        span_start: 0,
                        span_end: 4,
                    },
                    PlacedFragment {
                        frag: h2,
                        reversed: false,
                        span_start: 4,
                        span_end: 5,
                    },
                ],
            },
            m_row: Row {
                placed: vec![
                    PlacedFragment {
                        frag: m1,
                        reversed: false,
                        span_start: 0,
                        span_end: 3,
                    },
                    PlacedFragment {
                        frag: m2,
                        reversed: false,
                        span_start: 3,
                        span_end: 5,
                    },
                ],
            },
            columns: vec![
                Column {
                    h: Some((h1, 0)),
                    m: Some((m1, 0)),
                },
                Column {
                    h: Some((h1, 1)),
                    m: Some((m1, 1)),
                },
                Column {
                    h: Some((h1, 2)),
                    m: None,
                },
                Column {
                    h: None,
                    m: Some((m2, 0)),
                },
                Column {
                    h: Some((h2, 0)),
                    m: Some((m2, 1)),
                },
            ],
        };
        pair.validate(&inst).unwrap();
        // σ(a,s)=4, σ(b,t)=0, σ(d,v)=0 → score 4
        assert_eq!(pair.score(&inst), 4);
        let derived = pair.derive_matches(&inst);
        assert_eq!(derived.total_score(), 4);
    }

    #[test]
    fn validate_rejects_missing_fragment() {
        let inst = paper_example();
        let mut pair = fig5_pair(&inst);
        pair.h_row.placed.pop();
        assert!(pair.validate(&inst).is_err());
    }

    #[test]
    fn validate_rejects_span_gap() {
        let inst = paper_example();
        let mut pair = fig5_pair(&inst);
        pair.h_row.placed[1].span_start = 2; // overlaps previous span
        assert!(pair.validate(&inst).is_err());
    }

    #[test]
    fn validate_rejects_wrong_order() {
        let inst = paper_example();
        let mut pair = fig5_pair(&inst);
        // break laid order of h1 by swapping two cells
        pair.columns[0].h = Some((FragId::h(0), 1));
        pair.columns[1].h = Some((FragId::h(0), 0));
        assert!(pair.validate(&inst).is_err());
    }

    #[test]
    fn render_shows_reversals() {
        let inst = paper_example();
        let pair = fig5_pair(&inst);
        let s = pair.render(&inst);
        assert!(s.contains("dR"), "rendered: {s}");
        assert!(s.lines().count() == 2);
    }
}
