#![warn(missing_docs)]

//! # fragalign-model
//!
//! Sequence model substrate for the *Consensus Sequence Reconstruction*
//! (CSR) problem of Veeramachaneni, Berman and Miller, "Aligning two
//! fragmented sequences" (IPPS 2002 / Discrete Applied Mathematics 127,
//! 2003).
//!
//! Two incompletely sequenced genomes are available as sets of
//! *fragments* (contigs); each fragment is an ordered list of conserved
//! regions, possibly reverse-complemented. This crate provides:
//!
//! * the duplicated alphabet `Σ ∪ Σ^R` with its reversal involution
//!   ([`Sym`], [`Alphabet`]),
//! * fragments and species ([`Fragment`], [`Species`]),
//! * the region-level score function `σ` with the paper's symmetry
//!   `σ(a, b) = σ(a^R, b^R)` ([`ScoreTable`]),
//! * padded sequences and the column score of Definition 1
//!   ([`conjecture`]),
//! * sites, their full/border/inner classification (Definition 3) and
//!   the hidden/contained/adjacent predicates of Definition 5
//!   ([`Site`]),
//! * matches and consistent match sets (Definition 2) with a complete
//!   consistency decision procedure and a layout builder that converts
//!   a consistent match set back into an explicit conjecture pair
//!   (Remark 1), in [`matchset`] and [`consistency`].
//!
//! Higher layers (`fragalign-align`, `fragalign-core`) add alignment
//! scores over this model and the paper's approximation algorithms.

pub mod alphabet;
pub mod conjecture;
pub mod consistency;
pub mod error;
pub mod fragment;
pub mod instance;
pub mod matchset;
pub mod score;
pub mod site;
pub mod symbol;

pub use alphabet::Alphabet;
pub use conjecture::{Column, ConjecturePair, PlacedFragment, Row};
pub use consistency::{
    check_consistency, AlignColumns, ConsistencyReport, Dsu, Island, LayoutBuilder, SiteAligner,
    UnitAligner,
};
pub use error::Inconsistency;
pub use fragment::{FragId, Fragment, Species};
pub use instance::{Instance, InstanceBuilder};
pub use matchset::{Match, MatchId, MatchKind, MatchSet};
pub use score::{Orient, ScoreTable};
pub use site::{End, Site, SiteClass};
pub use symbol::{RegionId, Sym};

/// Scores are integral: the paper (§4.1) notes alignment scores have few
/// precision bits, and the Chandra–Halldórsson scaling step quantises
/// them anyway. We use a wide signed integer to keep sums exact.
pub type Score = i64;
