//! Sites — contiguous subfragments — and their classification.
//!
//! Definition 3 classifies sites of a fragment `f = f(1, n)` as
//! *full* (`f(1, n)`), *border* (`f(1, i)` or `f(i, n)`), or *inner*.
//! Definition 5 adds the predicates *contained*, *adjacent* and
//! *hidden* used by the improvement algorithms of §4.
//!
//! We use half-open 0-based coordinates `[lo, hi)` internally; the
//! paper's `f(i, j)` (1-based inclusive) is `Site { lo: i-1, hi: j }`.

use crate::fragment::FragId;
use serde::{Deserialize, Serialize};

/// One of the two ends of a fragment, in the fragment's own (original)
/// coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum End {
    /// The start of the fragment (position 0).
    Left,
    /// The end of the fragment (position `len`).
    Right,
}

impl End {
    /// The opposite end.
    #[inline]
    pub const fn other(self) -> End {
        match self {
            End::Left => End::Right,
            End::Right => End::Left,
        }
    }

    /// The end of the *laid-out* fragment this original end becomes
    /// when the fragment is placed reversed (`flip == true`).
    #[inline]
    pub const fn oriented(self, flip: bool) -> End {
        if flip {
            self.other()
        } else {
            self
        }
    }
}

/// Classification of a site per Definition 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SiteClass {
    /// The whole fragment.
    Full,
    /// A proper prefix or suffix; carries which end it touches.
    Border(End),
    /// Touches neither end.
    Inner,
}

/// A contiguous subfragment `f(i, j)`, stored half-open as `[lo, hi)`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Site {
    /// Which fragment the site lives on.
    pub frag: FragId,
    /// Inclusive start (0-based).
    pub lo: usize,
    /// Exclusive end.
    pub hi: usize,
}

impl std::fmt::Debug for Site {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:?}[{}..{}]", self.frag, self.lo, self.hi)
    }
}

impl Site {
    /// Construct a site; panics on an empty or inverted range.
    pub fn new(frag: FragId, lo: usize, hi: usize) -> Self {
        assert!(lo < hi, "site must be non-empty: [{lo}, {hi})");
        Site { frag, lo, hi }
    }

    /// The full site of a fragment with `len` regions.
    pub fn full(frag: FragId, len: usize) -> Self {
        Site::new(frag, 0, len)
    }

    /// Number of regions covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.hi - self.lo
    }

    /// Sites are non-empty by construction.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Classify the site within a fragment of length `frag_len`
    /// (Definition 3).
    pub fn classify(&self, frag_len: usize) -> SiteClass {
        debug_assert!(
            self.hi <= frag_len,
            "site {self:?} exceeds fragment length {frag_len}"
        );
        match (self.lo == 0, self.hi == frag_len) {
            (true, true) => SiteClass::Full,
            (true, false) => SiteClass::Border(End::Left),
            (false, true) => SiteClass::Border(End::Right),
            (false, false) => SiteClass::Inner,
        }
    }

    /// Whether the site is the whole fragment of length `frag_len`.
    pub fn is_full(&self, frag_len: usize) -> bool {
        self.classify(frag_len) == SiteClass::Full
    }

    /// Definition 5: `f(i, j)` is contained in `f(i', j')` if
    /// `i' ≤ i ≤ j ≤ j'`. Requires the same fragment.
    pub fn contained_in(&self, other: &Site) -> bool {
        self.frag == other.frag && other.lo <= self.lo && self.hi <= other.hi
    }

    /// Definition 5: adjacency — the sites abut with no gap.
    pub fn adjacent_to(&self, other: &Site) -> bool {
        self.frag == other.frag && (self.hi == other.lo || other.hi == self.lo)
    }

    /// Definition 5: `f(i, j)` is hidden by `f(i', j')` if
    /// `i' < i ≤ j < j'` (strictly inside).
    pub fn hidden_by(&self, other: &Site) -> bool {
        self.frag == other.frag && other.lo < self.lo && self.hi < other.hi
    }

    /// Whether the two sites overlap in at least one region.
    pub fn overlaps(&self, other: &Site) -> bool {
        self.frag == other.frag && self.lo < other.hi && other.lo < self.hi
    }

    /// Set difference `self − other` restricted to intervals: the
    /// (0, 1 or 2) maximal subsites of `self` not covered by `other`.
    pub fn minus(&self, other: &Site) -> Vec<Site> {
        if !self.overlaps(other) {
            return vec![*self];
        }
        let mut out = Vec::new();
        if self.lo < other.lo {
            out.push(Site::new(self.frag, self.lo, other.lo));
        }
        if other.hi < self.hi {
            out.push(Site::new(self.frag, other.hi, self.hi));
        }
        out
    }

    /// Intersection of two sites on the same fragment, if non-empty.
    pub fn intersect(&self, other: &Site) -> Option<Site> {
        if !self.overlaps(other) {
            return None;
        }
        Some(Site::new(
            self.frag,
            self.lo.max(other.lo),
            self.hi.min(other.hi),
        ))
    }

    /// The union of two overlapping or adjacent sites.
    pub fn join(&self, other: &Site) -> Option<Site> {
        if self.frag != other.frag {
            return None;
        }
        if self.overlaps(other) || self.adjacent_to(other) {
            Some(Site::new(
                self.frag,
                self.lo.min(other.lo),
                self.hi.max(other.hi),
            ))
        } else {
            None
        }
    }

    /// Mirror the site's coordinates within a fragment of length
    /// `frag_len` (where it lands after reversing the fragment).
    pub fn mirrored(&self, frag_len: usize) -> Site {
        Site::new(self.frag, frag_len - self.hi, frag_len - self.lo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f() -> FragId {
        FragId::h(0)
    }

    #[test]
    fn classification_matches_definition_3() {
        // Fragment of length 5: full, prefix border, suffix border, inner.
        assert_eq!(Site::new(f(), 0, 5).classify(5), SiteClass::Full);
        assert_eq!(
            Site::new(f(), 0, 3).classify(5),
            SiteClass::Border(End::Left)
        );
        assert_eq!(
            Site::new(f(), 2, 5).classify(5),
            SiteClass::Border(End::Right)
        );
        assert_eq!(Site::new(f(), 1, 4).classify(5), SiteClass::Inner);
        // Length-1 fragment: the single site is full.
        assert_eq!(Site::new(f(), 0, 1).classify(1), SiteClass::Full);
    }

    #[test]
    fn hidden_is_strict_containment() {
        let outer = Site::new(f(), 1, 6);
        assert!(Site::new(f(), 2, 5).hidden_by(&outer));
        assert!(Site::new(f(), 2, 6).contained_in(&outer));
        assert!(
            !Site::new(f(), 2, 6).hidden_by(&outer),
            "shared end ⇒ not hidden"
        );
        assert!(
            !Site::new(f(), 1, 5).hidden_by(&outer),
            "shared start ⇒ not hidden"
        );
        assert!(!outer.hidden_by(&outer));
        let other_frag = Site::new(FragId::m(0), 2, 5);
        assert!(
            !other_frag.hidden_by(&outer),
            "different fragments never hide"
        );
    }

    #[test]
    fn adjacency_and_overlap() {
        let a = Site::new(f(), 0, 3);
        let b = Site::new(f(), 3, 6);
        let c = Site::new(f(), 2, 4);
        assert!(a.adjacent_to(&b));
        assert!(b.adjacent_to(&a));
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
        assert!(!a.adjacent_to(&c));
    }

    #[test]
    fn minus_produces_flanks() {
        let big = Site::new(f(), 0, 10);
        let mid = Site::new(f(), 3, 6);
        assert_eq!(
            big.minus(&mid),
            vec![Site::new(f(), 0, 3), Site::new(f(), 6, 10)]
        );
        assert_eq!(mid.minus(&big), vec![]);
        let left = Site::new(f(), 0, 4);
        assert_eq!(big.minus(&left), vec![Site::new(f(), 4, 10)]);
        let disjoint = Site::new(FragId::m(1), 0, 2);
        assert_eq!(big.minus(&disjoint), vec![big]);
    }

    #[test]
    fn intersect_cases() {
        let a = Site::new(f(), 0, 5);
        let b = Site::new(f(), 3, 8);
        assert_eq!(a.intersect(&b), Some(Site::new(f(), 3, 5)));
        let c = Site::new(f(), 5, 8);
        assert_eq!(a.intersect(&c), None, "touching is not overlapping");
    }

    #[test]
    fn mirror_maps_prefix_to_suffix() {
        let prefix = Site::new(f(), 0, 2);
        assert_eq!(prefix.mirrored(5), Site::new(f(), 3, 5));
        assert_eq!(prefix.mirrored(5).mirrored(5), prefix);
        // classification swaps Left and Right
        assert_eq!(
            prefix.mirrored(5).classify(5),
            SiteClass::Border(End::Right)
        );
    }

    #[test]
    fn oriented_end_mapping() {
        assert_eq!(End::Left.oriented(false), End::Left);
        assert_eq!(End::Left.oriented(true), End::Right);
        assert_eq!(End::Right.oriented(true), End::Left);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_site_rejected() {
        Site::new(f(), 3, 3);
    }
}
