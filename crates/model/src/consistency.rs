//! Deciding consistency of match sets and rebuilding conjecture pairs.
//!
//! Definition 2 calls a match set *consistent* when some conjecture
//! pair produces it. DESIGN.md §4 derives the structural
//! characterisation implemented here:
//!
//! 1. matched sites on a fragment are pairwise disjoint;
//! 2. a match is *full* iff one side is an entire fragment — that
//!    fragment (the *plug*) then has no other match;
//! 3. a *border–border* match is a staircase overlap: it joins original
//!    ends `E_h`, `E_m` with relative orientation `r` subject to
//!    `E_h ≠ E_m ⊕ r` (after laying out, one fragment's tail overlaps
//!    the other's head);
//! 4. each fragment end carries at most one border match;
//! 5. border matches form simple paths (no cycles) — every island is a
//!    "caterpillar": a spine of multiple fragments joined by staircase
//!    overlaps, with plugged full-match leaves hanging inside;
//! 6. orientations are assigned island-wise by propagation.
//!
//! [`LayoutBuilder`] converts a consistent set back into an explicit
//! [`ConjecturePair`] (Remark 1), realising each match's score through
//! a [`SiteAligner`].

use crate::conjecture::{ConjecturePair, PairAssembler};
use crate::error::Inconsistency;
use crate::fragment::{FragId, Species};
use crate::instance::Instance;
use crate::matchset::{MatchId, MatchKind, MatchSet};
use crate::score::{Orient, ScoreTable};
use crate::site::{End, Site};
use crate::symbol::{reverse_word, Sym};
use crate::Score;
use std::collections::HashMap;

/// How to realise a match's score as explicit alignment columns when
/// building a layout. `u` is the H-side word and `v` the M-side word,
/// both already in laid orientation; implementations return the
/// realised score and a monotone list of column pairs
/// `(u offset, v offset)` where `None` is a gap.
pub trait SiteAligner {
    /// Align two laid words.
    fn align_words(&self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, AlignColumns);
}

/// Alignment columns as `(u offset, v offset)` pairs, `None` for gaps.
pub type AlignColumns = Vec<(Option<usize>, Option<usize>)>;

/// Trivial aligner pairing the words diagonally (position `i` with
/// position `i`). Sufficient for tests whose match scores were computed
/// the same way; real layouts use the DP aligner from
/// `fragalign-align`, which realises the optimum `P_score`.
#[derive(Clone, Copy, Debug, Default)]
pub struct UnitAligner;

impl SiteAligner for UnitAligner {
    fn align_words(&self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, AlignColumns) {
        let k = u.len().min(v.len());
        let mut cols = Vec::with_capacity(u.len().max(v.len()));
        let mut score = 0;
        for i in 0..k {
            score += sigma.score(u[i], v[i]);
            cols.push((Some(i), Some(i)));
        }
        for i in k..u.len() {
            cols.push((Some(i), None));
        }
        for j in k..v.len() {
            cols.push((None, Some(j)));
        }
        (score, cols)
    }
}

/// A connected component of the solution graph (§4.1): the fragments
/// that are mutually ordered/oriented by the matches.
#[derive(Clone, Debug)]
pub struct Island {
    /// All fragments of the island.
    pub fragments: Vec<FragId>,
    /// All matches of the island.
    pub matches: Vec<MatchId>,
    /// The border-match spine in path order (single fragment when the
    /// island has no border matches).
    pub spine: Vec<FragId>,
    /// Border matches along the spine: `border_edges[i]` joins
    /// `spine[i]` and `spine[i+1]`.
    pub border_edges: Vec<MatchId>,
}

/// Result of a successful consistency check.
#[derive(Clone, Debug)]
pub struct ConsistencyReport {
    /// Island decomposition of the solution graph.
    pub islands: Vec<Island>,
    /// Relative orientation assignment: `true` = lay out reversed.
    /// One entry per fragment that participates in a match.
    pub orientation: HashMap<FragId, bool>,
    /// Structural kind of every match (indexed by [`MatchId`]).
    pub kinds: Vec<MatchKind>,
}

impl ConsistencyReport {
    /// Fragments participating in more than one match, or in a border
    /// match of a 2-fragment island, i.e. `Mult(S)` in the paper's
    /// island terminology (Definition 5 and §4.1).
    pub fn multiple_fragments(&self, s: &MatchSet) -> Vec<FragId> {
        let mut out = Vec::new();
        for island in &self.islands {
            if island.fragments.len() == 2 && island.matches.len() == 1 {
                // one simple, one multiple: the spine fragment is the
                // multiple one by the paper's convention
                out.push(island.spine[0]);
            } else {
                for &f in &island.fragments {
                    let deg = s.iter().filter(|(_, m)| m.site_on(f).is_some()).count();
                    if deg > 1 {
                        out.push(f);
                    }
                }
            }
        }
        out.sort();
        out
    }
}

/// Decide whether `s` is a consistent match set for `inst`
/// (Definition 2), returning the island structure on success and the
/// first diagnosed violation otherwise.
pub fn check_consistency(
    inst: &Instance,
    s: &MatchSet,
) -> Result<ConsistencyReport, Inconsistency> {
    // -- 0. species and bounds ------------------------------------------------
    for (id, m) in s.iter() {
        if m.h.frag.species != Species::H || m.m.frag.species != Species::M {
            return Err(Inconsistency::SameSpecies { m: id });
        }
        for site in [m.h, m.m] {
            let len = inst.frag_len(site.frag);
            if site.hi > len {
                return Err(Inconsistency::SiteOutOfBounds {
                    site,
                    frag_len: len,
                });
            }
        }
    }

    // -- 1. disjoint sites per fragment --------------------------------------
    let by_frag = s.sites_by_fragment();
    for sites in by_frag.values() {
        for w in sites.windows(2) {
            let ((id1, s1), (id2, s2)) = (w[0], w[1]);
            if s1.overlaps(&s2) {
                return Err(Inconsistency::OverlappingSites {
                    m1: id1,
                    m2: id2,
                    site1: s1,
                    site2: s2,
                });
            }
        }
    }

    // -- 2. classify matches --------------------------------------------------
    let mut kinds = Vec::with_capacity(s.len());
    for (id, m) in s.iter() {
        let kind = m.kind(inst.frag_len(m.h.frag), inst.frag_len(m.m.frag));
        match kind {
            None => {
                // Identify the offending inner site for the diagnosis.
                let inner =
                    if m.h.classify(inst.frag_len(m.h.frag)) == crate::site::SiteClass::Inner {
                        m.h
                    } else {
                        m.m
                    };
                return Err(Inconsistency::InnerSiteNotFull { m: id, inner });
            }
            Some(MatchKind::Border { h_end, m_end }) => {
                // Staircase condition: E_h ≠ E_m ⊕ r.
                let rhs = match m.orient {
                    Orient::Same => m_end,
                    Orient::Reversed => m_end.other(),
                };
                if h_end == rhs {
                    return Err(Inconsistency::BorderEndMismatch {
                        m: id,
                        h_end,
                        m_end,
                    });
                }
                kinds.push(kind.unwrap());
            }
            Some(k) => kinds.push(k),
        }
    }

    // -- 3. at most one border match per fragment end -------------------------
    let mut end_claims: HashMap<(FragId, End), MatchId> = HashMap::new();
    for (id, m) in s.iter() {
        if let MatchKind::Border { h_end, m_end } = kinds[id] {
            for (frag, end) in [(m.h.frag, h_end), (m.m.frag, m_end)] {
                if let Some(&prev) = end_claims.get(&(frag, end)) {
                    return Err(Inconsistency::DoubleBorderEnd {
                        frag,
                        end,
                        m1: prev,
                        m2: id,
                    });
                }
                end_claims.insert((frag, end), id);
            }
        }
    }

    // -- 4. border matches form simple paths ----------------------------------
    // Sorted so orientation propagation (rule 6) seeds each island
    // from the same fragment on every run — layouts must not depend on
    // hash iteration order.
    let mut frags: Vec<FragId> = by_frag.keys().copied().collect();
    frags.sort_unstable();
    let frag_index: HashMap<FragId, usize> = frags
        .iter()
        .copied()
        .enumerate()
        .map(|(i, f)| (f, i))
        .collect();
    let mut dsu = Dsu::new(frags.len());
    for (id, m) in s.iter() {
        if matches!(kinds[id], MatchKind::Border { .. }) {
            let (a, b) = (frag_index[&m.h.frag], frag_index[&m.m.frag]);
            if !dsu.union(a, b) {
                return Err(Inconsistency::BorderCycle { m: id });
            }
        }
    }

    // -- 5. islands over all matches ------------------------------------------
    let mut all = Dsu::new(frags.len());
    for (_, m) in s.iter() {
        all.union(frag_index[&m.h.frag], frag_index[&m.m.frag]);
    }
    let mut groups: HashMap<usize, Vec<FragId>> = HashMap::new();
    for (i, &f) in frags.iter().enumerate() {
        groups.entry(all.find(i)).or_default().push(f);
    }

    // -- 6. orientations by propagation ---------------------------------------
    let mut orientation: HashMap<FragId, bool> = HashMap::new();
    let mut adj: HashMap<FragId, Vec<(FragId, Orient)>> = HashMap::new();
    for (_, m) in s.iter() {
        adj.entry(m.h.frag).or_default().push((m.m.frag, m.orient));
        adj.entry(m.m.frag).or_default().push((m.h.frag, m.orient));
    }
    for &start in &frags {
        if orientation.contains_key(&start) {
            continue;
        }
        orientation.insert(start, false);
        let mut stack = vec![start];
        while let Some(f) = stack.pop() {
            let of = orientation[&f];
            for &(g, r) in adj.get(&f).into_iter().flatten() {
                let og = of ^ r.is_reversed();
                if let Some(&prev) = orientation.get(&g) {
                    // Graph is a forest (step 4 plus plug exclusivity),
                    // so re-visits always agree.
                    debug_assert_eq!(prev, og, "orientation conflict in a tree");
                } else {
                    orientation.insert(g, og);
                    stack.push(g);
                }
            }
        }
    }

    // -- 7. spine extraction ---------------------------------------------------
    let mut islands = Vec::new();
    let mut sorted_groups: Vec<Vec<FragId>> = groups.into_values().collect();
    for g in &mut sorted_groups {
        g.sort();
    }
    sorted_groups.sort();
    for fragments in sorted_groups {
        let matches: Vec<MatchId> = s
            .iter()
            .filter(|(_, m)| fragments.contains(&m.h.frag))
            .map(|(id, _)| id)
            .collect();
        let border: Vec<MatchId> = matches
            .iter()
            .copied()
            .filter(|&id| matches!(kinds[id], MatchKind::Border { .. }))
            .collect();
        let (spine, border_edges) = if border.is_empty() {
            // The container: the fragment that is the non-plug side of
            // its matches (or the H side of a both-full 2-island).
            let container = matches
                .iter()
                .map(|&id| {
                    let m = &s.as_slice()[id];
                    match kinds[id] {
                        MatchKind::Full {
                            full_side: Species::H,
                        } => m.m.frag,
                        _ => m.h.frag,
                    }
                })
                .next()
                .expect("island has at least one match");
            (vec![container], vec![])
        } else {
            walk_spine(s, &border)
        };
        islands.push(Island {
            fragments,
            matches,
            spine,
            border_edges,
        });
    }

    Ok(ConsistencyReport {
        islands,
        orientation,
        kinds,
    })
}

/// Order an island's border matches into a path.
fn walk_spine(s: &MatchSet, border: &[MatchId]) -> (Vec<FragId>, Vec<MatchId>) {
    let mut adj: HashMap<FragId, Vec<(MatchId, FragId)>> = HashMap::new();
    for &id in border {
        let m = &s.as_slice()[id];
        adj.entry(m.h.frag).or_default().push((id, m.m.frag));
        adj.entry(m.m.frag).or_default().push((id, m.h.frag));
    }
    // A path has exactly two degree-1 endpoints; pick the smaller id
    // for determinism.
    let mut endpoints: Vec<FragId> = adj
        .iter()
        .filter(|(_, v)| v.len() == 1)
        .map(|(&f, _)| f)
        .collect();
    endpoints.sort();
    let start = endpoints[0];
    let mut spine = vec![start];
    let mut edges = Vec::new();
    let mut prev_edge: Option<MatchId> = None;
    let mut cur = start;
    loop {
        let next = adj[&cur]
            .iter()
            .find(|&&(id, _)| Some(id) != prev_edge)
            .copied();
        match next {
            Some((id, other)) => {
                edges.push(id);
                spine.push(other);
                prev_edge = Some(id);
                cur = other;
            }
            None => break,
        }
        if edges.len() == border.len() {
            break;
        }
    }
    (spine, edges)
}

/// Minimal union–find over `0..n`, shared by the consistency rules
/// here and by solver-side guards that enforce the same border-forest
/// invariant (e.g. `fragalign-core`'s improvement operations).
pub struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    /// Representative of `x`'s set.
    pub fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let root = self.find(self.parent[x]);
            self.parent[x] = root;
        }
        self.parent[x]
    }

    /// Union two elements; `false` if already joined.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// Builds an explicit [`ConjecturePair`] from a consistent match set
/// (the constructive direction of Remark 1).
pub struct LayoutBuilder<'a, A: SiteAligner> {
    inst: &'a Instance,
    aligner: &'a A,
}

impl<'a, A: SiteAligner> LayoutBuilder<'a, A> {
    /// Create a builder over an instance and an aligner.
    pub fn new(inst: &'a Instance, aligner: &'a A) -> Self {
        LayoutBuilder { inst, aligner }
    }

    /// Build the conjecture pair realising `s`. Fails with the
    /// consistency diagnosis if `s` is not consistent.
    pub fn layout(&self, s: &MatchSet) -> Result<ConjecturePair, Inconsistency> {
        let report = check_consistency(self.inst, s)?;
        let mut orient = report.orientation.clone();
        let mut emit = PairAssembler::new();

        for island in &report.islands {
            self.normalize_island(s, island, &mut orient);
            self.emit_island(s, island, &orient, &mut emit);
        }

        // Unmatched fragments: appended forward, against ⊥.
        for f in self.inst.all_frag_ids() {
            if emit.contains(f) || orient.contains_key(&f) {
                continue;
            }
            for i in 0..self.inst.frag_len(f) {
                match f.species {
                    Species::H => emit.push(Some((f, i, false)), None),
                    Species::M => emit.push(None, Some((f, i, false))),
                }
            }
        }
        // Every matched fragment was emitted by its island.
        debug_assert!(orient.keys().all(|f| emit.contains(*f)));

        Ok(emit.finish())
    }

    /// Flip an island's orientation assignment so the spine walks
    /// left→right: the first spine fragment's border end must be laid
    /// `Right`.
    fn normalize_island(&self, s: &MatchSet, island: &Island, orient: &mut HashMap<FragId, bool>) {
        let Some(&first_edge) = island.border_edges.first() else {
            return;
        };
        let root = island.spine[0];
        let m = &s.as_slice()[first_edge];
        let root_site = m.site_on(root).expect("spine fragment is in its edge");
        let end = match root_site.classify(self.inst.frag_len(root)) {
            crate::site::SiteClass::Border(e) => e,
            c => unreachable!("border match on non-border site: {c:?}"),
        };
        if end.oriented(orient[&root]) != End::Right {
            for f in &island.fragments {
                if let Some(o) = orient.get_mut(f) {
                    *o = !*o;
                }
            }
        }
    }

    /// Laid word of a site under an orientation flag.
    fn laid_word(&self, site: Site, rev: bool) -> Vec<Sym> {
        let w = self.inst.site_word(site);
        if rev {
            reverse_word(w)
        } else {
            w.to_vec()
        }
    }

    /// Map a laid offset within a laid site back to the original index.
    fn original_index(&self, site: Site, rev: bool, laid_off: usize) -> usize {
        if rev {
            site.hi - 1 - laid_off
        } else {
            site.lo + laid_off
        }
    }

    /// Emit the aligned columns of one match. `a` is the site of the
    /// fragment currently being walked; `b` the opposite site.
    fn emit_match(
        &self,
        a_site: Site,
        a_rev: bool,
        b_site: Site,
        b_rev: bool,
        emit: &mut PairAssembler,
    ) {
        // Order H side first for the aligner and the column cells.
        let a_is_h = a_site.frag.species == Species::H;
        let (h_site, h_rev, m_site, m_rev) = if a_is_h {
            (a_site, a_rev, b_site, b_rev)
        } else {
            (b_site, b_rev, a_site, a_rev)
        };
        let u = self.laid_word(h_site, h_rev);
        let v = self.laid_word(m_site, m_rev);
        let (_, cols) = self.aligner.align_words(&self.inst.sigma, &u, &v);
        for (uo, vo) in cols {
            let h_cell = uo.map(|o| (h_site.frag, self.original_index(h_site, h_rev, o), h_rev));
            let m_cell = vo.map(|o| (m_site.frag, self.original_index(m_site, m_rev, o), m_rev));
            emit.push(h_cell, m_cell);
        }
    }

    /// Emit one island: walk the spine, interleaving unmatched regions,
    /// plugged leaves and staircase junctions.
    fn emit_island(
        &self,
        s: &MatchSet,
        island: &Island,
        orient: &HashMap<FragId, bool>,
        emit: &mut PairAssembler,
    ) {
        // Laid position where each spine fragment's remaining content
        // starts (the entry staircase is emitted by the predecessor).
        let mut entry_consumed = 0usize;
        for (i, &f) in island.spine.iter().enumerate() {
            let o = orient[&f];
            let n = self.inst.frag_len(f);
            let exit_edge = island.border_edges.get(i).copied();
            // Sites on f in laid coordinates: plugs plus the exit site.
            struct Ev {
                laid_lo: usize,
                laid_hi: usize,
                mid: MatchId,
                is_exit: bool,
            }
            let mut events: Vec<Ev> = Vec::new();
            for &mid in &island.matches {
                let m = &s.as_slice()[mid];
                let Some(site) = m.site_on(f) else { continue };
                let entry_edge = if i > 0 {
                    island.border_edges.get(i - 1).copied()
                } else {
                    None
                };
                if Some(mid) == entry_edge {
                    continue; // already emitted by predecessor
                }
                let is_exit = Some(mid) == exit_edge;
                // A plug event only belongs to f when f is the container.
                if !is_exit {
                    let other = m.other_site(f).expect("cross match");
                    let other_full = other.is_full(self.inst.frag_len(other.frag));
                    if !other_full {
                        continue; // f is the plug of this match; emitted by container
                    }
                }
                let laid = if o { site.mirrored(n) } else { site };
                events.push(Ev {
                    laid_lo: laid.lo,
                    laid_hi: laid.hi,
                    mid,
                    is_exit,
                });
            }
            events.sort_by_key(|e| e.laid_lo);

            let mut pos = entry_consumed;
            entry_consumed = 0;
            for ev in &events {
                // Unmatched laid region before the event.
                for p in pos..ev.laid_lo {
                    let idx = if o { n - 1 - p } else { p };
                    match f.species {
                        Species::H => emit.push(Some((f, idx, o)), None),
                        Species::M => emit.push(None, Some((f, idx, o))),
                    }
                }
                let m = &s.as_slice()[ev.mid];
                let my_site = m.site_on(f).unwrap();
                let other_site = m.other_site(f).unwrap();
                let other_rev = orient[&other_site.frag];
                self.emit_match(my_site, o, other_site, other_rev, emit);
                pos = ev.laid_hi;
                if ev.is_exit {
                    // Predecessor emitted the successor's entry site.
                    let next = island.spine[i + 1];
                    let next_o = orient[&next];
                    let next_n = self.inst.frag_len(next);
                    let laid_entry = if next_o {
                        other_site.mirrored(next_n)
                    } else {
                        other_site
                    };
                    debug_assert_eq!(laid_entry.lo, 0, "entry site must be a laid prefix");
                    entry_consumed = laid_entry.hi;
                }
            }
            // Tail of the fragment after the last event.
            for p in pos..n {
                let idx = if o { n - 1 - p } else { p };
                match f.species {
                    Species::H => emit.push(Some((f, idx, o)), None),
                    Species::M => emit.push(None, Some((f, idx, o))),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{paper_example, InstanceBuilder};
    use crate::matchset::Match;

    fn h(i: usize, lo: usize, hi: usize) -> Site {
        Site::new(FragId::h(i), lo, hi)
    }
    fn m(i: usize, lo: usize, hi: usize) -> Site {
        Site::new(FragId::m(i), lo, hi)
    }

    /// The consistent match set of Fig. 5.
    fn fig5_matches() -> MatchSet {
        MatchSet::from_matches(vec![
            Match::new(h(0, 0, 2), m(0, 0, 2), Orient::Same, 4),
            Match::new(h(0, 2, 3), m(1, 0, 1), Orient::Same, 5),
            Match::new(h(1, 0, 1), m(1, 1, 2), Orient::Reversed, 2),
        ])
    }

    #[test]
    fn fig5_is_consistent() {
        let inst = paper_example();
        let report = check_consistency(&inst, &fig5_matches()).unwrap();
        // One island containing all four fragments: h1–m1 staircase? No:
        // h1's site (0,2) is a border site, m1 (0,2) is full ⇒ m1 plugs
        // into h1. h1(2,3) border + m2(0,1) border = staircase; h2 full
        // plugs into m2.
        assert_eq!(report.islands.len(), 1);
        let island = &report.islands[0];
        assert_eq!(island.fragments.len(), 4);
        assert_eq!(island.spine, vec![FragId::h(0), FragId::m(1)]);
        assert_eq!(island.border_edges.len(), 1);
    }

    #[test]
    fn fig5_layout_roundtrip() {
        let inst = paper_example();
        let s = fig5_matches();
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&s).unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(
            pair.score(&inst),
            11,
            "layout realises Σ MS = 11:\n{}",
            pair.render(&inst)
        );
        // Derived matches preserve the score (Remark 1) and are
        // consistent again.
        let derived = pair.derive_matches(&inst);
        assert_eq!(derived.total_score(), 11);
        check_consistency(&inst, &derived).unwrap();
    }

    #[test]
    fn overlap_is_rejected() {
        let inst = paper_example();
        let s = MatchSet::from_matches(vec![
            Match::new(h(0, 0, 2), m(0, 0, 2), Orient::Same, 4),
            Match::new(h(0, 1, 3), m(1, 0, 2), Orient::Same, 4),
        ]);
        match check_consistency(&inst, &s) {
            Err(Inconsistency::OverlappingSites { .. }) => {}
            other => panic!("expected overlap, got {other:?}"),
        }
    }

    #[test]
    fn inner_inner_is_rejected() {
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b", "c", "d"]);
        b.m_frag("m", &["w", "x", "y", "z"]);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![Match::new(h(0, 1, 3), m(0, 1, 3), Orient::Same, 1)]);
        match check_consistency(&inst, &s) {
            Err(Inconsistency::InnerSiteNotFull { .. }) => {}
            other => panic!("expected inner-site error, got {other:?}"),
        }
    }

    #[test]
    fn staircase_orientation_rule() {
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b"]);
        b.m_frag("m", &["x", "y"]);
        let inst = b.build();
        // Same orientation, suffix-with-suffix: cannot be laid flush.
        let bad = MatchSet::from_matches(vec![Match::new(h(0, 1, 2), m(0, 1, 2), Orient::Same, 1)]);
        match check_consistency(&inst, &bad) {
            Err(Inconsistency::BorderEndMismatch { .. }) => {}
            other => panic!("expected end mismatch, got {other:?}"),
        }
        // Reversed orientation suffix-with-suffix is the Fig. 1
        // situation (b aligns d^R) and is fine.
        let good = MatchSet::from_matches(vec![Match::new(
            h(0, 1, 2),
            m(0, 1, 2),
            Orient::Reversed,
            1,
        )]);
        check_consistency(&inst, &good).unwrap();
        // Same orientation suffix-with-prefix is the classic overlap.
        let good2 =
            MatchSet::from_matches(vec![Match::new(h(0, 1, 2), m(0, 0, 1), Orient::Same, 1)]);
        check_consistency(&inst, &good2).unwrap();
    }

    #[test]
    fn double_border_end_rejected() {
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b", "c"]);
        b.m_frag("m1", &["x", "y"]);
        b.m_frag("m2", &["w", "z"]);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![
            Match::new(h(0, 2, 3), m(0, 0, 1), Orient::Same, 1),
            Match::new(h(0, 1, 3), m(1, 0, 1), Orient::Same, 1),
        ]);
        // First the overlap triggers; shrink to share only the end.
        let s2 = MatchSet::from_matches(vec![
            Match::new(h(0, 2, 3), m(0, 0, 1), Orient::Same, 1),
            Match::new(h(0, 2, 3), m(1, 0, 1), Orient::Same, 1),
        ]);
        assert!(matches!(
            check_consistency(&inst, &s),
            Err(Inconsistency::OverlappingSites { .. })
        ));
        assert!(matches!(
            check_consistency(&inst, &s2),
            Err(Inconsistency::OverlappingSites { .. })
        ));
    }

    #[test]
    fn border_cycle_rejected() {
        // h1 and m1 overlap at both end pairs: a 2-cycle of border
        // matches, impossible to lay out.
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b", "c"]);
        b.m_frag("m", &["x", "y", "z"]);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![
            Match::new(h(0, 2, 3), m(0, 0, 1), Orient::Same, 1),
            Match::new(h(0, 0, 1), m(0, 2, 3), Orient::Same, 1),
        ]);
        match check_consistency(&inst, &s) {
            Err(Inconsistency::BorderCycle { .. }) => {}
            other => panic!("expected cycle, got {other:?}"),
        }
    }

    #[test]
    fn chain_of_staircases_layout() {
        // h1 ⟨a b⟩, m1 ⟨c d⟩, h2 ⟨e f⟩: h1 suffix ~ m1 prefix,
        // m1 suffix ~ h2 prefix — a 3-spine chain.
        let mut b = InstanceBuilder::new();
        b.h_frag("h1", &["a", "b"]);
        b.h_frag("h2", &["e", "f"]);
        b.m_frag("m1", &["c", "d"]);
        b.score("b", "c", 3);
        b.score("e", "d", 2);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![
            Match::new(h(0, 1, 2), m(0, 0, 1), Orient::Same, 3),
            Match::new(h(1, 0, 1), m(0, 1, 2), Orient::Same, 2),
        ]);
        let report = check_consistency(&inst, &s).unwrap();
        assert_eq!(report.islands.len(), 1);
        assert_eq!(report.islands[0].spine.len(), 3);
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&s).unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(pair.score(&inst), 5, "{}", pair.render(&inst));
        let derived = pair.derive_matches(&inst);
        assert_eq!(derived.total_score(), 5);
        check_consistency(&inst, &derived).unwrap();
    }

    #[test]
    fn reversed_staircase_layout() {
        // Fig. 1: region b at the end of h aligns with d^R where d is at
        // the end of m2 — m2 must be laid reversed.
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b"]);
        b.m_frag("m", &["c", "d"]);
        b.score("b", "dR", 7);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![Match::new(
            h(0, 1, 2),
            m(0, 1, 2),
            Orient::Reversed,
            7,
        )]);
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&s).unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(pair.score(&inst), 7, "{}", pair.render(&inst));
        let placement = pair.placement(FragId::m(0)).unwrap();
        let h_placement = pair.placement(FragId::h(0)).unwrap();
        assert_ne!(
            placement.reversed, h_placement.reversed,
            "exactly one side is laid reversed"
        );
    }

    #[test]
    fn multiple_plugs_layout() {
        // Container h ⟨a b c d⟩ with two plugged M fragments.
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["a", "b", "c", "d"]);
        b.m_frag("m1", &["x"]);
        b.m_frag("m2", &["y", "z"]);
        b.score("a", "x", 2);
        b.score("c", "y", 3);
        b.score("d", "z", 4);
        let inst = b.build();
        let s = MatchSet::from_matches(vec![
            Match::new(h(0, 0, 1), m(0, 0, 1), Orient::Same, 2),
            Match::new(h(0, 2, 4), m(1, 0, 2), Orient::Same, 7),
        ]);
        let report = check_consistency(&inst, &s).unwrap();
        assert_eq!(report.islands.len(), 1);
        assert_eq!(report.islands[0].spine, vec![FragId::h(0)]);
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&s).unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(pair.score(&inst), 9, "{}", pair.render(&inst));
    }

    #[test]
    fn strict_prefix_prefix_match_is_inconsistent() {
        // A (prefix, prefix) same-orientation match cannot be produced
        // by any conjecture pair: no fragment end provides the split at
        // the sites' inner boundary (Definition 2). The consistent way
        // to express "a aligns with s" plugs the whole fragment.
        let inst = paper_example();
        let s = MatchSet::from_matches(vec![Match::new(h(0, 0, 1), m(0, 0, 1), Orient::Same, 4)]);
        assert!(matches!(
            check_consistency(&inst, &s),
            Err(Inconsistency::BorderEndMismatch { .. })
        ));
    }

    #[test]
    fn multiple_islands_and_unmatched() {
        let inst = paper_example();
        // Only one match: m1 = ⟨s, t⟩ plugged (full) into the prefix
        // site ⟨a⟩ of h1; everything else is unmatched.
        let s = MatchSet::from_matches(vec![Match::new(h(0, 0, 1), m(0, 0, 2), Orient::Same, 4)]);
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&s).unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(pair.score(&inst), 4);
        // All 4 fragments placed.
        assert_eq!(pair.h_row.placed.len(), 2);
        assert_eq!(pair.m_row.placed.len(), 2);
    }

    #[test]
    fn empty_set_layout() {
        let inst = paper_example();
        let pair = LayoutBuilder::new(&inst, &UnitAligner)
            .layout(&MatchSet::new())
            .unwrap();
        pair.validate(&inst).unwrap();
        assert_eq!(pair.score(&inst), 0);
        assert_eq!(pair.derive_matches(&inst).len(), 0);
    }

    #[test]
    fn multiple_fragments_report() {
        let inst = paper_example();
        let s = fig5_matches();
        let report = check_consistency(&inst, &s).unwrap();
        let mult = report.multiple_fragments(&s);
        assert!(mult.contains(&FragId::h(0)));
        assert!(mult.contains(&FragId::m(1)));
        assert!(!mult.contains(&FragId::h(1)));
    }
}
