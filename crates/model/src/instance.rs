//! CSR problem instances.
//!
//! An instance is `(H, M, σ)`: the two fragment sets plus the region
//! score function. A builder offers the ergonomic construction used
//! throughout the examples and tests (named regions, named fragments,
//! scores by name).

use crate::alphabet::Alphabet;
use crate::fragment::{FragId, Fragment, Species};
use crate::score::ScoreTable;
use crate::site::Site;
use crate::symbol::Sym;
use crate::Score;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A CSR problem instance `(H, M, σ)`.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Instance {
    /// Fragments of the first species.
    pub h: Vec<Fragment>,
    /// Fragments of the second species.
    pub m: Vec<Fragment>,
    /// The region score function σ.
    pub sigma: ScoreTable,
    /// Region names (may be empty when instances are generated).
    pub alphabet: Alphabet,
}

impl Instance {
    /// The fragment with the given id.
    pub fn fragment(&self, id: FragId) -> &Fragment {
        match id.species {
            Species::H => &self.h[id.index],
            Species::M => &self.m[id.index],
        }
    }

    /// Length (number of regions) of fragment `id`.
    pub fn frag_len(&self, id: FragId) -> usize {
        self.fragment(id).len()
    }

    /// The word spelled by a site.
    pub fn site_word(&self, site: Site) -> &[Sym] {
        self.fragment(site.frag).slice(site.lo, site.hi)
    }

    /// Iterate over all fragment ids of one species.
    pub fn frag_ids(&self, species: Species) -> impl Iterator<Item = FragId> + '_ {
        let n = match species {
            Species::H => self.h.len(),
            Species::M => self.m.len(),
        };
        (0..n).map(move |i| FragId { species, index: i })
    }

    /// Iterate over all fragment ids, H first.
    pub fn all_frag_ids(&self) -> impl Iterator<Item = FragId> + '_ {
        self.frag_ids(Species::H).chain(self.frag_ids(Species::M))
    }

    /// Total number of regions across both species.
    pub fn total_regions(&self) -> usize {
        self.h.iter().map(Fragment::len).sum::<usize>()
            + self.m.iter().map(Fragment::len).sum::<usize>()
    }

    /// An upper bound on the number of *useful* matches: every match
    /// consumes at least one region on each side, so a consistent set
    /// has at most `min(|H regions|, |M regions|)` matches. Used by the
    /// §4.1 scaling step as the bound `k`.
    pub fn match_count_bound(&self) -> usize {
        let h: usize = self.h.iter().map(Fragment::len).sum();
        let m: usize = self.m.iter().map(Fragment::len).sum();
        h.min(m).max(1)
    }

    /// A sound upper bound on the total score of *any* consistent
    /// match set, by greedy assignment relaxation over σ.
    ///
    /// The total score of a match set is a sum of aligned-column
    /// scores in which every region *occurrence* of either species
    /// appears at most once (matches occupy disjoint sites per
    /// species, and within a match each symbol sits in one column).
    /// Relax the consistency constraints entirely and let every
    /// occurrence independently pick its best admissible partner:
    /// occurrence of region `r` on the H side contributes at most
    /// `max(best σ entry touching r as H side, default_score, 0)` —
    /// the `default_score` because unlisted partners score it, the `0`
    /// because a gap is free and an optimal alignment never keeps a
    /// negative column. Summing per side (saturating) and taking the
    /// smaller side bounds every consistent match set from above —
    /// each column is counted once on each side, so both sums
    /// dominate the true total.
    ///
    /// Always ≤ the naive min-mass × σ_max bound
    /// ([`Instance::score_upper_bound_naive`]): each per-region best
    /// is ≤ the global per-pair maximum. On heterogeneous tables it is
    /// far tighter, which is what lets the portfolio's best-score
    /// board retire racers early — a solver that reaches this bound is
    /// provably optimal.
    pub fn score_upper_bound(&self) -> Score {
        let default = self.sigma.default_score.max(0);
        let mut best_h: HashMap<u32, Score> = HashMap::new();
        let mut best_m: HashMap<u32, Score> = HashMap::new();
        // Orientation is a free choice per match, so the per-region
        // best ranges over both orientations.
        for (a, b, _orient, s) in self.sigma.iter() {
            let e = best_h.entry(a).or_insert(s);
            *e = (*e).max(s);
            let e = best_m.entry(b).or_insert(s);
            *e = (*e).max(s);
        }
        let side = |frags: &[Fragment], best: &HashMap<u32, Score>| -> Score {
            let mut sum: Score = 0;
            for f in frags {
                for sym in &f.regions {
                    let per = best
                        .get(&sym.id)
                        .copied()
                        .map_or(default, |b| b.max(default));
                    // Saturate: a huge synthetic instance must clamp
                    // to Score::MAX rather than wrap negative, which
                    // would let the portfolio retire racers against a
                    // bound nothing can reach.
                    sum = sum.saturating_add(per);
                }
            }
            sum
        };
        side(&self.h, &best_h).min(side(&self.m, &best_m))
    }

    /// The pre-relaxation bound: min region mass × the best per-pair
    /// score. Kept as the comparison baseline for the bound-tightness
    /// assertions in `exp_kernel` and the bound proptests;
    /// [`Instance::score_upper_bound`] is always at least as tight.
    pub fn score_upper_bound_naive(&self) -> Score {
        let per_pair = self
            .sigma
            .max_score()
            .unwrap_or(self.sigma.default_score)
            .max(self.sigma.default_score)
            .max(0);
        let h: usize = self.h.iter().map(Fragment::len).sum();
        let m: usize = self.m.iter().map(Fragment::len).sum();
        (h.min(m) as Score).saturating_mul(per_pair)
    }

    /// Return the instance with species swapped (`H ↔ M`). The score
    /// table is unchanged: `σ` entries are keyed H-then-M, so the
    /// swapped instance must be queried through [`ScoreTable::score`]
    /// with arguments swapped — callers use [`Instance::sigma_swapped`]
    /// which performs the re-keying eagerly.
    pub fn swapped(&self) -> Instance {
        Instance {
            h: self.m.clone(),
            m: self.h.clone(),
            sigma: self.sigma_swapped(),
            alphabet: self.alphabet.clone(),
        }
    }

    fn sigma_swapped(&self) -> ScoreTable {
        let mut t = ScoreTable::new();
        t.default_score = self.sigma.default_score;
        for (a, b, o, s) in self.sigma.iter() {
            let (x, y) = match o {
                crate::score::Orient::Same => (Sym::fwd(b), Sym::fwd(a)),
                crate::score::Orient::Reversed => (Sym::fwd(b), Sym::rev(a)),
            };
            t.set(x, y, s);
        }
        t
    }

    /// Sanity-check an instance (e.g. one deserialised from JSON):
    /// no empty fragments, and — when the alphabet is populated —
    /// every region id resolvable.
    pub fn validate(&self) -> Result<(), String> {
        for f in self.h.iter().chain(self.m.iter()) {
            if f.is_empty() {
                return Err(format!("fragment {} has no regions", f.name));
            }
            if !self.alphabet.is_empty() {
                for sym in &f.regions {
                    if self.alphabet.name(sym.id).is_none() {
                        return Err(format!(
                            "fragment {} region #{} is not in the alphabet",
                            f.name, sym.id
                        ));
                    }
                }
            }
        }
        Ok(())
    }

    /// Concatenate all fragments of one species into a single fragment
    /// (the `F'` operation of Theorem 3).
    pub fn concat_species(&self, species: Species) -> Fragment {
        let frags = match species {
            Species::H => &self.h,
            Species::M => &self.m,
        };
        let mut regions = Vec::new();
        for f in frags {
            regions.extend_from_slice(&f.regions);
        }
        Fragment::new(format!("{species}-concat"), regions)
    }
}

/// Ergonomic construction of instances with named regions.
#[derive(Debug, Default)]
pub struct InstanceBuilder {
    alphabet: Alphabet,
    h: Vec<Fragment>,
    m: Vec<Fragment>,
    sigma: ScoreTable,
}

impl InstanceBuilder {
    /// Start an empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parse a region token: `"a"` is forward, `"aR"` is reversed.
    fn parse_sym(&mut self, token: &str) -> Sym {
        if let Some(base) = token.strip_suffix('R') {
            if !base.is_empty() {
                return self.alphabet.sym_rev(base);
            }
        }
        self.alphabet.sym(token)
    }

    /// Add an H fragment from region tokens, e.g. `["a", "bR", "c"]`.
    pub fn h_frag(&mut self, name: &str, regions: &[&str]) -> &mut Self {
        let syms = regions.iter().map(|r| self.parse_sym(r)).collect();
        self.h.push(Fragment::new(name, syms));
        self
    }

    /// Add an M fragment from region tokens.
    pub fn m_frag(&mut self, name: &str, regions: &[&str]) -> &mut Self {
        let syms = regions.iter().map(|r| self.parse_sym(r)).collect();
        self.m.push(Fragment::new(name, syms));
        self
    }

    /// Record `σ(a, b) = score` using region tokens (`"aR"` for the
    /// reversed occurrence, as in the paper's `σ(b, t^R) = 3`).
    pub fn score(&mut self, a: &str, b: &str, score: Score) -> &mut Self {
        let sa = self.parse_sym(a);
        let sb = self.parse_sym(b);
        self.sigma.set(sa, sb, score);
        self
    }

    /// Finish building.
    pub fn build(&mut self) -> Instance {
        Instance {
            h: std::mem::take(&mut self.h),
            m: std::mem::take(&mut self.m),
            sigma: std::mem::take(&mut self.sigma),
            alphabet: std::mem::take(&mut self.alphabet),
        }
    }
}

/// The running example of the paper's introduction (Figs. 2, 4, 5):
/// contigs `h1 = ⟨a,b,c⟩`, `h2 = ⟨d⟩`, `m1 = ⟨s,t⟩`, `m2 = ⟨u,v⟩` with
/// `σ(a,s)=4, σ(a,t)=1, σ(b,t^R)=3, σ(c,u)=5, σ(d,t)=σ(d,v^R)=2`.
/// Its optimum solution scores 11.
pub fn paper_example() -> Instance {
    let mut b = InstanceBuilder::new();
    b.h_frag("h1", &["a", "b", "c"]);
    b.h_frag("h2", &["d"]);
    b.m_frag("m1", &["s", "t"]);
    b.m_frag("m2", &["u", "v"]);
    b.score("a", "s", 4);
    b.score("a", "t", 1);
    b.score("b", "tR", 3);
    b.score("c", "u", 5);
    b.score("d", "t", 2);
    b.score("d", "vR", 2);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::score::Orient;

    #[test]
    fn score_upper_bound_is_sound() {
        let inst = paper_example();
        // Assignment relaxation: per-region bests a=4, b=3, c=5, d=2
        // on the H side (sum 14) and s=4, t=3, u=5, v=2 on the M side
        // (sum 14) — tighter than the naive 4 × 5 = 20, and ≥ the
        // true optimum 11.
        assert_eq!(inst.score_upper_bound(), 14);
        assert_eq!(inst.score_upper_bound_naive(), 4 * 5);
        assert!(inst.score_upper_bound() <= inst.score_upper_bound_naive());
        // A positive default score backs every unlisted pair, so it
        // must raise every per-region best too.
        let mut defaulted = paper_example();
        defaulted.sigma.default_score = 9;
        assert_eq!(defaulted.score_upper_bound(), 4 * 9);
        assert_eq!(defaulted.score_upper_bound_naive(), 4 * 9);
        // An all-negative table bounds at 0 (aligning nothing is free).
        let mut negative = paper_example();
        negative.sigma = ScoreTable::new();
        negative.sigma.default_score = -2;
        assert_eq!(negative.score_upper_bound(), 0);
        assert_eq!(negative.score_upper_bound_naive(), 0);
    }

    #[test]
    fn score_upper_bound_saturates_instead_of_wrapping() {
        // With per-pair scores near Score::MAX, an unchecked sum
        // wraps negative — an upper bound below every real score,
        // which would retire portfolio racers that could still win.
        // Both bounds must clamp at Score::MAX.
        let mut inst = paper_example();
        inst.sigma.default_score = Score::MAX;
        assert_eq!(inst.score_upper_bound(), Score::MAX);
        assert_eq!(inst.score_upper_bound_naive(), Score::MAX);
    }

    #[test]
    fn paper_example_shape() {
        let inst = paper_example();
        assert_eq!(inst.h.len(), 2);
        assert_eq!(inst.m.len(), 2);
        assert_eq!(inst.h[0].len(), 3);
        assert_eq!(inst.total_regions(), 8);
        assert_eq!(inst.match_count_bound(), 4);
        // σ(b, t^R) = 3 and by symmetry σ(b^R, t) = 3.
        let b = Sym::fwd(inst.alphabet.get("b").unwrap());
        let t = Sym::fwd(inst.alphabet.get("t").unwrap());
        assert_eq!(inst.sigma.score(b, t.reversed()), 3);
        assert_eq!(inst.sigma.score(b.reversed(), t), 3);
        assert_eq!(inst.sigma.score(b, t), 0);
    }

    #[test]
    fn swapped_rekeys_sigma() {
        let inst = paper_example();
        let sw = inst.swapped();
        assert_eq!(sw.h.len(), 2);
        assert_eq!(sw.h[0].name, "m1");
        let b = Sym::fwd(inst.alphabet.get("b").unwrap());
        let t = Sym::fwd(inst.alphabet.get("t").unwrap());
        // σ'(t^R, b) = σ(b, t^R) = 3; relative orientation preserved.
        assert_eq!(sw.sigma.score(t.reversed(), b), 3);
        assert_eq!(sw.sigma.score(t, b), 0);
        assert_eq!(sw.sigma.score_rel(t.id, b.id, Orient::Reversed), 3);
    }

    #[test]
    fn concat_joins_in_order() {
        let inst = paper_example();
        let cat = inst.concat_species(Species::M);
        assert_eq!(cat.len(), 4);
        let names: Vec<String> = cat
            .regions
            .iter()
            .map(|&s| inst.alphabet.render(s))
            .collect();
        assert_eq!(names, vec!["s", "t", "u", "v"]);
    }

    #[test]
    fn builder_parses_reversed_tokens() {
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["x", "yR"]);
        let inst = b.build();
        assert!(!inst.h[0].regions[0].rev);
        assert!(inst.h[0].regions[1].rev);
    }

    #[test]
    fn validate_catches_bad_instances() {
        let inst = paper_example();
        assert!(inst.validate().is_ok());
        let mut empty_frag = inst.clone();
        empty_frag
            .h
            .push(crate::fragment::Fragment::new("bad", vec![]));
        assert!(empty_frag.validate().is_err());
        let mut unknown_region = inst.clone();
        unknown_region.m[0].regions.push(Sym::fwd(9999));
        assert!(unknown_region.validate().is_err());
    }

    #[test]
    fn serde_roundtrip() {
        let inst = paper_example();
        let json = serde_json::to_string(&inst).unwrap();
        let mut back: Instance = serde_json::from_str(&json).unwrap();
        back.alphabet.rebuild_index();
        assert_eq!(back.h, inst.h);
        assert_eq!(back.m, inst.m);
        let a = Sym::fwd(inst.alphabet.get("a").unwrap());
        let s = Sym::fwd(inst.alphabet.get("s").unwrap());
        assert_eq!(back.sigma.score(a, s), 4);
        assert_eq!(back.alphabet.get("a"), inst.alphabet.get("a"));
    }

    #[test]
    fn frag_ids_enumerate_both_species() {
        let inst = paper_example();
        let ids: Vec<FragId> = inst.all_frag_ids().collect();
        assert_eq!(
            ids,
            vec![FragId::h(0), FragId::h(1), FragId::m(0), FragId::m(1)]
        );
    }
}
