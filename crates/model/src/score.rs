//! The region-level score function `σ : Σ̃ × Σ̃ → ℝ`.
//!
//! §2.1 requires the reversal symmetry `σ(a, b) = σ(a^R, b^R)`, which
//! implies `σ(a^R, b) = σ(a, b^R)`. Consequently a pair of regions has
//! exactly two independent scores: one for the *same* relative
//! orientation and one for the *opposite* relative orientation. The
//! padding symbol `⊥` scores 0 against everything; we never store it —
//! alignment layers treat gaps as score-0 columns directly.

use crate::symbol::{RegionId, Sym};
use crate::Score;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::OnceLock;

/// Relative orientation of the two sides of a match or region pair.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Orient {
    /// Both occurrences in the same orientation.
    Same,
    /// One side reversed relative to the other.
    Reversed,
}

impl Orient {
    /// Compose two relative orientations (xor).
    #[inline]
    pub const fn compose(self, other: Orient) -> Orient {
        match (self, other) {
            (Orient::Same, o) | (o, Orient::Same) => o,
            (Orient::Reversed, Orient::Reversed) => Orient::Same,
        }
    }

    /// The opposite relative orientation.
    #[inline]
    pub const fn flipped(self) -> Orient {
        match self {
            Orient::Same => Orient::Reversed,
            Orient::Reversed => Orient::Same,
        }
    }

    /// Relative orientation of two symbol occurrences.
    #[inline]
    pub const fn between(a: Sym, b: Sym) -> Orient {
        if a.rev == b.rev {
            Orient::Same
        } else {
            Orient::Reversed
        }
    }

    /// Encode as a bool (`Reversed == true`).
    #[inline]
    pub const fn is_reversed(self) -> bool {
        matches!(self, Orient::Reversed)
    }

    /// Decode from a bool (`true == Reversed`).
    #[inline]
    pub const fn from_reversed(rev: bool) -> Orient {
        if rev {
            Orient::Reversed
        } else {
            Orient::Same
        }
    }
}

/// Sparse table of alignment scores between H-side and M-side regions.
///
/// Keys are `(h_region, m_region, relative orientation)`; the §2.1
/// symmetry is enforced by construction because only the relative
/// orientation is stored. Pairs absent from the table score
/// [`ScoreTable::default_score`] (0 unless configured otherwise), which
/// models "no alignment found between these regions".
///
/// Serialises as a list of `(h, m, orient, score)` rows: JSON map keys
/// must be strings, so the tuple-keyed map is flattened on the wire.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
#[serde(from = "ScoreTableWire", into = "ScoreTableWire")]
pub struct ScoreTable {
    entries: HashMap<(RegionId, RegionId, Orient), Score>,
    /// Score of region pairs with no table entry.
    pub default_score: Score,
    /// Lazily computed largest explicit score, reset by every
    /// [`ScoreTable::set`]. `Instance::score_upper_bound` sits on the
    /// portfolio's per-solve path, so the entry map must not be
    /// rescanned per call.
    max_cache: OnceLock<Option<Score>>,
}

/// Wire format of [`ScoreTable`].
#[derive(Serialize, Deserialize)]
struct ScoreTableWire {
    entries: Vec<(RegionId, RegionId, Orient, Score)>,
    default_score: Score,
}

impl From<ScoreTableWire> for ScoreTable {
    fn from(w: ScoreTableWire) -> Self {
        ScoreTable {
            entries: w
                .entries
                .into_iter()
                .map(|(a, b, o, s)| ((a, b, o), s))
                .collect(),
            default_score: w.default_score,
            max_cache: OnceLock::new(),
        }
    }
}

impl From<ScoreTable> for ScoreTableWire {
    fn from(t: ScoreTable) -> Self {
        let mut entries: Vec<(RegionId, RegionId, Orient, Score)> = t
            .entries
            .into_iter()
            .map(|((a, b, o), s)| (a, b, o, s))
            .collect();
        entries.sort_unstable();
        ScoreTableWire {
            entries,
            default_score: t.default_score,
        }
    }
}

impl ScoreTable {
    /// An empty table (all pairs score 0).
    pub fn new() -> Self {
        Self::default()
    }

    /// Record `σ(a, b) = score` for forward occurrences `a` (H side)
    /// and `b` (M side); by symmetry this also sets `σ(a^R, b^R)`.
    pub fn set(&mut self, a: Sym, b: Sym, score: Score) {
        self.entries
            .insert((a.id, b.id, Orient::between(a, b)), score);
        self.max_cache = OnceLock::new();
    }

    /// Look up `σ(a, b)` where `a` is an H-side occurrence and `b` an
    /// M-side occurrence.
    #[inline]
    pub fn score(&self, a: Sym, b: Sym) -> Score {
        self.entries
            .get(&(a.id, b.id, Orient::between(a, b)))
            .copied()
            .unwrap_or(self.default_score)
    }

    /// Look up by region ids and relative orientation.
    #[inline]
    pub fn score_rel(&self, a: RegionId, b: RegionId, rel: Orient) -> Score {
        self.entries
            .get(&(a, b, rel))
            .copied()
            .unwrap_or(self.default_score)
    }

    /// All explicit entries, for serialisation and inspection.
    pub fn iter(&self) -> impl Iterator<Item = (RegionId, RegionId, Orient, Score)> + '_ {
        self.entries.iter().map(|(&(a, b, o), &s)| (a, b, o, s))
    }

    /// Number of explicit entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table has no explicit entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The largest explicit score (useful for normalisation); `None`
    /// if the table is empty. Computed on first call and cached until
    /// the next [`ScoreTable::set`].
    pub fn max_score(&self) -> Option<Score> {
        *self
            .max_cache
            .get_or_init(|| self.entries.values().copied().max())
    }

    /// Return a copy with every score truncated down to a multiple of
    /// `quantum` (the Chandra–Halldórsson scaling step of §4.1).
    pub fn truncated(&self, quantum: Score) -> ScoreTable {
        assert!(quantum > 0, "scaling quantum must be positive");
        let entries = self
            .entries
            .iter()
            .map(|(&k, &s)| (k, s.div_euclid(quantum) * quantum))
            .collect();
        ScoreTable {
            entries,
            default_score: self.default_score.div_euclid(quantum) * quantum,
            max_cache: OnceLock::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversal_symmetry_of_sigma() {
        let mut t = ScoreTable::new();
        let a = Sym::fwd(0);
        let b = Sym::fwd(1);
        t.set(a, b, 7);
        // σ(a, b) = σ(a^R, b^R)
        assert_eq!(t.score(a, b), 7);
        assert_eq!(t.score(a.reversed(), b.reversed()), 7);
        // opposite orientation is a distinct value
        assert_eq!(t.score(a, b.reversed()), 0);
        t.set(a, b.reversed(), 3);
        assert_eq!(t.score(a, b.reversed()), 3);
        assert_eq!(t.score(a.reversed(), b), 3); // σ(a^R, b) = σ(a, b^R)
        assert_eq!(t.score(a, b), 7, "same-orientation entry untouched");
    }

    #[test]
    fn default_score_for_missing_pairs() {
        let mut t = ScoreTable::new();
        assert_eq!(t.score(Sym::fwd(5), Sym::fwd(6)), 0);
        t.default_score = -1;
        assert_eq!(t.score(Sym::fwd(5), Sym::fwd(6)), -1);
    }

    #[test]
    fn orient_algebra() {
        use Orient::*;
        assert_eq!(Same.compose(Same), Same);
        assert_eq!(Same.compose(Reversed), Reversed);
        assert_eq!(Reversed.compose(Reversed), Same);
        assert_eq!(Same.flipped(), Reversed);
        assert_eq!(Reversed.flipped(), Same);
        assert_eq!(Orient::between(Sym::fwd(0), Sym::rev(1)), Reversed);
        assert_eq!(Orient::from_reversed(Reversed.is_reversed()), Reversed);
    }

    #[test]
    fn truncation_rounds_down_to_quantum() {
        let mut t = ScoreTable::new();
        t.set(Sym::fwd(0), Sym::fwd(1), 17);
        t.set(Sym::fwd(0), Sym::fwd(2), 20);
        let q = t.truncated(5);
        assert_eq!(q.score(Sym::fwd(0), Sym::fwd(1)), 15);
        assert_eq!(q.score(Sym::fwd(0), Sym::fwd(2)), 20);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn truncation_rejects_zero_quantum() {
        ScoreTable::new().truncated(0);
    }

    #[test]
    fn max_score_scans_entries() {
        let mut t = ScoreTable::new();
        assert_eq!(t.max_score(), None);
        t.set(Sym::fwd(0), Sym::fwd(1), 4);
        t.set(Sym::fwd(1), Sym::fwd(1), 9);
        assert_eq!(t.max_score(), Some(9));
    }

    #[test]
    fn max_score_cache_invalidated_by_set() {
        let mut t = ScoreTable::new();
        t.set(Sym::fwd(0), Sym::fwd(1), 4);
        assert_eq!(t.max_score(), Some(4), "prime the cache");
        t.set(Sym::fwd(2), Sym::fwd(1), 11);
        assert_eq!(t.max_score(), Some(11), "set must drop the cache");
        t.set(Sym::fwd(2), Sym::fwd(1), 1);
        assert_eq!(t.max_score(), Some(4), "overwrites can lower the max");
        // Clones and serde round-trips see the same values.
        assert_eq!(t.clone().max_score(), Some(4));
        let json = serde_json::to_string(&t).unwrap();
        let back: ScoreTable = serde_json::from_str(&json).unwrap();
        assert_eq!(back.max_score(), Some(4));
    }
}
