//! Property-based tests for the sequence model: the reversal algebra,
//! score symmetry, site set-algebra, and the consistency/layout
//! roundtrip on randomly constructed plug solutions.

use fragalign_model::symbol::{reverse_word, reverse_word_in_place};
use fragalign_model::{
    check_consistency, FragId, Fragment, Instance, LayoutBuilder, Match, MatchSet, Orient,
    ScoreTable, Site, Species, Sym, UnitAligner,
};
use proptest::prelude::*;

fn sym_strategy() -> impl Strategy<Value = Sym> {
    (0u32..40, any::<bool>()).prop_map(|(id, rev)| Sym { id, rev })
}

fn word_strategy(max: usize) -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(sym_strategy(), 0..max)
}

proptest! {
    #[test]
    fn reversal_is_involution(w in word_strategy(24)) {
        prop_assert_eq!(reverse_word(&reverse_word(&w)), w);
    }

    #[test]
    fn reversal_antihomomorphism(u in word_strategy(12), v in word_strategy(12)) {
        let mut uv = u.clone();
        uv.extend_from_slice(&v);
        let mut expect = reverse_word(&v);
        expect.extend(reverse_word(&u));
        prop_assert_eq!(reverse_word(&uv), expect);
    }

    #[test]
    fn in_place_reversal_agrees(w in word_strategy(24)) {
        let mut w2 = w.clone();
        reverse_word_in_place(&mut w2);
        prop_assert_eq!(w2, reverse_word(&w));
    }

    #[test]
    fn sigma_reversal_symmetry(a in sym_strategy(), b in sym_strategy(), s in -50i64..50) {
        let mut t = ScoreTable::new();
        t.set(a, b, s);
        // σ(a, b) = σ(a^R, b^R) and σ(a^R, b) = σ(a, b^R)
        prop_assert_eq!(t.score(a, b), s);
        prop_assert_eq!(t.score(a.reversed(), b.reversed()), s);
        prop_assert_eq!(t.score(a.reversed(), b), t.score(a, b.reversed()));
    }

    #[test]
    fn site_minus_is_set_difference(
        (alo, ahi) in (0usize..20).prop_flat_map(|lo| (Just(lo), lo + 1..=21)),
        (blo, bhi) in (0usize..20).prop_flat_map(|lo| (Just(lo), lo + 1..=21)),
    ) {
        let f = FragId::h(0);
        let a = Site::new(f, alo, ahi);
        let b = Site::new(f, blo, bhi);
        let mut expected: Vec<usize> = (alo..ahi).filter(|p| !(blo..bhi).contains(p)).collect();
        let mut got: Vec<usize> = a.minus(&b).iter().flat_map(|s| s.lo..s.hi).collect();
        expected.sort_unstable();
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn site_intersect_matches_overlap(
        (alo, ahi) in (0usize..20).prop_flat_map(|lo| (Just(lo), lo + 1..=21)),
        (blo, bhi) in (0usize..20).prop_flat_map(|lo| (Just(lo), lo + 1..=21)),
    ) {
        let f = FragId::m(3);
        let a = Site::new(f, alo, ahi);
        let b = Site::new(f, blo, bhi);
        prop_assert_eq!(a.overlaps(&b), a.intersect(&b).is_some());
        if let Some(i) = a.intersect(&b) {
            prop_assert!(i.contained_in(&a) && i.contained_in(&b));
        }
        prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
    }

    #[test]
    fn site_mirror_involution(
        (lo, hi) in (0usize..10).prop_flat_map(|lo| (Just(lo), lo + 1..=10)),
        extra in 0usize..5,
    ) {
        let len = hi + extra;
        let s = Site::new(FragId::h(1), lo, hi);
        prop_assert_eq!(s.mirrored(len).mirrored(len), s);
        prop_assert_eq!(s.mirrored(len).len(), s.len());
    }
}

/// Build an instance with one container per species and a pool of
/// single-region plug fragments, then a random set of non-overlapping
/// plug matches — consistent by construction.
fn plug_solution(plug_count: usize, positions: Vec<(bool, usize)>) -> (Instance, MatchSet) {
    let container_len = 12usize;
    let mut h = vec![Fragment::new(
        "H0",
        (0..container_len as u32).map(Sym::fwd).collect(),
    )];
    let mut m = vec![Fragment::new(
        "M0",
        (100..100 + container_len as u32).map(Sym::fwd).collect(),
    )];
    let mut sigma = ScoreTable::new();
    // plug fragments: H plugs 200.., M plugs 300..
    for k in 0..plug_count {
        h.push(Fragment::new(
            format!("hp{k}"),
            vec![Sym::fwd(200 + k as u32)],
        ));
        m.push(Fragment::new(
            format!("mp{k}"),
            vec![Sym::fwd(300 + k as u32)],
        ));
        // score against every container cell so any position works
        for c in 0..container_len as u32 {
            sigma.set(Sym::fwd(200 + k as u32), Sym::fwd(100 + c), 2);
            sigma.set(Sym::fwd(c), Sym::fwd(300 + k as u32), 3);
        }
    }
    let inst = Instance {
        h,
        m,
        sigma,
        alphabet: Default::default(),
    };

    // Place each plug at its position if free; skip collisions.
    let mut used_h = vec![false; container_len];
    let mut used_m = vec![false; container_len];
    let mut set = MatchSet::new();
    for (k, &(into_m, pos)) in positions.iter().enumerate().take(plug_count) {
        let pos = pos % container_len;
        if into_m {
            if used_m[pos] {
                continue;
            }
            used_m[pos] = true;
            set.push(Match::new(
                Site::full(FragId::h(1 + k), 1),
                Site::new(FragId::m(0), pos, pos + 1),
                Orient::Same,
                2,
            ));
        } else {
            if used_h[pos] {
                continue;
            }
            used_h[pos] = true;
            set.push(Match::new(
                Site::new(FragId::h(0), pos, pos + 1),
                Site::full(FragId::m(1 + k), 1),
                Orient::Same,
                3,
            ));
        }
    }
    (inst, set)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_plug_solutions_roundtrip(
        positions in prop::collection::vec((any::<bool>(), 0usize..12), 0..8)
    ) {
        let (inst, set) = plug_solution(positions.len(), positions);
        let report = check_consistency(&inst, &set);
        prop_assert!(report.is_ok(), "constructed solution must be consistent: {report:?}");
        let pair = LayoutBuilder::new(&inst, &UnitAligner).layout(&set).unwrap();
        pair.validate(&inst).unwrap();
        prop_assert_eq!(pair.score(&inst), set.total_score());
        let derived = pair.derive_matches(&inst);
        prop_assert_eq!(derived.total_score(), set.total_score());
        prop_assert!(check_consistency(&inst, &derived).is_ok());
    }

    #[test]
    fn overlapping_plugs_rejected(pos in 0usize..12) {
        let (inst, set) = plug_solution(2, vec![(true, pos), (true, (pos + 5) % 12)]);
        // Force an overlap by duplicating the first match's site onto
        // the second plug.
        if set.len() == 2 {
            let first = set.as_slice()[0];
            let second = set.as_slice()[1];
            let clash = Match::new(second.h, first.m, first.orient, first.score);
            let mut bad = MatchSet::new();
            bad.push(first);
            bad.push(clash);
            prop_assert!(check_consistency(&inst, &bad).is_err());
        }
    }
}

/// Species sanity: every match must cross species.
#[test]
fn same_species_match_rejected() {
    let (inst, _) = plug_solution(1, vec![(true, 0)]);
    let mut set = MatchSet::new();
    set.push(Match {
        h: Site::full(FragId::h(1), 1),
        m: Site::new(FragId::h(0), 0, 1), // wrong species on purpose
        orient: Orient::Same,
        score: 1,
    });
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(fragalign_model::Inconsistency::SameSpecies { .. })
    ));
}

/// Degenerate: zero fragments.
#[test]
fn empty_instance_layout() {
    let inst = Instance::default();
    let pair = LayoutBuilder::new(&inst, &UnitAligner)
        .layout(&MatchSet::new())
        .unwrap();
    assert_eq!(pair.columns.len(), 0);
    assert_eq!(pair.score(&inst), 0);
}

/// Mult(S) classification respects Species ordering invariants.
#[test]
fn multiple_fragments_sorted() {
    let (inst, set) = plug_solution(4, vec![(true, 0), (true, 3), (false, 1), (false, 7)]);
    let report = check_consistency(&inst, &set).unwrap();
    let mult = report.multiple_fragments(&set);
    let mut sorted = mult.clone();
    sorted.sort();
    assert_eq!(mult, sorted);
    // Containers with ≥2 plugs are multiple.
    for f in &mult {
        assert!(matches!(
            (f.species, f.index),
            (Species::H, 0) | (Species::M, 0)
        ));
    }
}
