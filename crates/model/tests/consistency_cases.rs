//! One accepting and one rejecting case per consistency predicate:
//! the structural rules of `check_consistency` (species, bounds, site
//! ordering/disjointness, full-vs-inner classification, staircase
//! orientation, border cycles) and the Definition-5 site predicates
//! (contained / adjacent / hidden) they are built from.

use fragalign_model::{
    check_consistency, FragId, Fragment, Inconsistency, Instance, Match, MatchSet, Orient,
    ScoreTable, Site, Sym,
};

/// Two fragments per species, three regions each, with every
/// cross-species region pair scoring 1 so structure alone decides
/// consistency.
fn test_instance() -> Instance {
    let frag =
        |name: &str, base: u32| Fragment::new(name, (base..base + 3).map(Sym::fwd).collect());
    let mut sigma = ScoreTable::new();
    for h in 0..6u32 {
        for m in 100..106u32 {
            sigma.set(Sym::fwd(h), Sym::fwd(m), 1);
        }
    }
    Instance {
        h: vec![frag("h0", 0), frag("h1", 3)],
        m: vec![frag("m0", 100), frag("m1", 103)],
        sigma,
        alphabet: Default::default(),
    }
}

fn single(m: Match) -> MatchSet {
    let mut set = MatchSet::new();
    set.push(m);
    set
}

// -- species rule ------------------------------------------------------------

#[test]
fn cross_species_match_accepted() {
    let inst = test_instance();
    let set = single(Match::new(
        Site::new(FragId::h(0), 0, 1),
        Site::new(FragId::m(0), 2, 3),
        Orient::Same,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn same_species_match_rejected() {
    let inst = test_instance();
    // Constructed without `Match::new` (whose debug assert would fire)
    // to exercise the checker itself.
    let set = single(Match {
        h: Site::new(FragId::h(0), 0, 1),
        m: Site::new(FragId::h(1), 0, 1),
        orient: Orient::Same,
        score: 1,
    });
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::SameSpecies { .. })
    ));
}

// -- bounds rule -------------------------------------------------------------

#[test]
fn in_bounds_site_accepted() {
    let inst = test_instance();
    let set = single(Match::new(
        Site::new(FragId::h(0), 0, 3), // exactly the fragment
        Site::new(FragId::m(0), 0, 3),
        Orient::Same,
        3,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn out_of_bounds_site_rejected() {
    let inst = test_instance();
    let set = single(Match::new(
        Site::new(FragId::h(0), 1, 4), // fragment has length 3
        Site::new(FragId::m(0), 0, 3),
        Orient::Same,
        3,
    ));
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::SiteOutOfBounds { .. })
    ));
}

// -- ordering / disjointness of matched sites --------------------------------

#[test]
fn disjoint_sites_on_one_fragment_accepted() {
    let inst = test_instance();
    let mut set = MatchSet::new();
    // Two plugs into disjoint cells of m0.
    set.push(Match::new(
        Site::full(FragId::h(0), 3),
        Site::new(FragId::m(0), 0, 1),
        Orient::Same,
        1,
    ));
    set.push(Match::new(
        Site::full(FragId::h(1), 3),
        Site::new(FragId::m(0), 2, 3),
        Orient::Same,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn overlapping_sites_on_one_fragment_rejected() {
    let inst = test_instance();
    let mut set = MatchSet::new();
    set.push(Match::new(
        Site::full(FragId::h(0), 3),
        Site::new(FragId::m(0), 0, 2),
        Orient::Same,
        2,
    ));
    set.push(Match::new(
        Site::full(FragId::h(1), 3),
        Site::new(FragId::m(0), 1, 3),
        Orient::Same,
        2,
    ));
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::OverlappingSites { .. })
    ));
}

// -- full-vs-inner classification --------------------------------------------

#[test]
fn inner_site_in_full_match_accepted() {
    let inst = test_instance();
    // h0 plugs, whole, into the middle cell of m0: the inner M site is
    // part of a full match, which rule 2 allows.
    let set = single(Match::new(
        Site::full(FragId::h(0), 3),
        Site::new(FragId::m(0), 1, 2),
        Orient::Same,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn inner_site_without_full_side_rejected() {
    let inst = test_instance();
    // Inner site on M, border site on H: no side is a whole fragment,
    // so the inner site cannot be realised by any layout.
    let set = single(Match::new(
        Site::new(FragId::h(0), 0, 1),
        Site::new(FragId::m(0), 1, 2),
        Orient::Same,
        1,
    ));
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::InnerSiteNotFull { .. })
    ));
}

// -- staircase orientation rule (E_h != E_m xor r) ---------------------------

#[test]
fn prefix_suffix_same_orientation_accepted() {
    let inst = test_instance();
    // h0's tail overlaps m0's head: Right end against Left end, Same.
    let set = single(Match::new(
        Site::new(FragId::h(0), 2, 3),
        Site::new(FragId::m(0), 0, 1),
        Orient::Same,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn prefix_prefix_reversed_orientation_accepted() {
    let inst = test_instance();
    // Two heads can only overlap when one fragment is laid reversed.
    let set = single(Match::new(
        Site::new(FragId::h(0), 0, 1),
        Site::new(FragId::m(0), 0, 1),
        Orient::Reversed,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn prefix_prefix_same_orientation_rejected() {
    let inst = test_instance();
    let set = single(Match::new(
        Site::new(FragId::h(0), 0, 1),
        Site::new(FragId::m(0), 0, 1),
        Orient::Same,
        1,
    ));
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::BorderEndMismatch { .. })
    ));
}

// -- border matches form simple paths ----------------------------------------

#[test]
fn border_chain_accepted() {
    let inst = test_instance();
    let mut set = MatchSet::new();
    // h0 - m0 - h1: a spine of two staircase overlaps.
    set.push(Match::new(
        Site::new(FragId::h(0), 2, 3),
        Site::new(FragId::m(0), 0, 1),
        Orient::Same,
        1,
    ));
    set.push(Match::new(
        Site::new(FragId::h(1), 0, 1),
        Site::new(FragId::m(0), 2, 3),
        Orient::Same,
        1,
    ));
    assert!(check_consistency(&inst, &set).is_ok());
}

#[test]
fn border_two_cycle_rejected() {
    let inst = test_instance();
    let mut set = MatchSet::new();
    // h0 and m0 overlap at both end pairs — no linear layout exists.
    set.push(Match::new(
        Site::new(FragId::h(0), 2, 3),
        Site::new(FragId::m(0), 0, 1),
        Orient::Same,
        1,
    ));
    set.push(Match::new(
        Site::new(FragId::h(0), 0, 1),
        Site::new(FragId::m(0), 2, 3),
        Orient::Same,
        1,
    ));
    assert!(matches!(
        check_consistency(&inst, &set),
        Err(Inconsistency::BorderCycle { .. })
    ));
}

// -- Definition 5 site predicates --------------------------------------------

#[test]
fn contained_in_accepts_and_rejects() {
    let f = FragId::h(0);
    assert!(Site::new(f, 1, 2).contained_in(&Site::new(f, 0, 3)));
    assert!(Site::new(f, 0, 3).contained_in(&Site::new(f, 0, 3))); // containment is reflexive
    assert!(!Site::new(f, 0, 2).contained_in(&Site::new(f, 1, 3))); // straddles the boundary
    assert!(!Site::new(f, 1, 2).contained_in(&Site::new(FragId::h(1), 0, 3))); // other fragment
}

#[test]
fn adjacent_to_accepts_and_rejects() {
    let f = FragId::m(0);
    assert!(Site::new(f, 0, 1).adjacent_to(&Site::new(f, 1, 2))); // abut left-to-right
    assert!(Site::new(f, 1, 2).adjacent_to(&Site::new(f, 0, 1))); // symmetric
    assert!(!Site::new(f, 0, 1).adjacent_to(&Site::new(f, 2, 3))); // gap between
    assert!(!Site::new(f, 0, 2).adjacent_to(&Site::new(f, 1, 3))); // overlap, not adjacency
}

#[test]
fn hidden_by_accepts_and_rejects() {
    let f = FragId::h(1);
    assert!(Site::new(f, 1, 2).hidden_by(&Site::new(f, 0, 3))); // strictly inside
    assert!(!Site::new(f, 0, 2).hidden_by(&Site::new(f, 0, 3))); // shares the left end
    assert!(!Site::new(f, 1, 3).hidden_by(&Site::new(f, 0, 3))); // shares the right end
    assert!(!Site::new(f, 1, 2).hidden_by(&Site::new(FragId::h(0), 0, 3))); // other fragment
}
