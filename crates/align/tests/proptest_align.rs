//! Property-based tests for the alignment substrate.

use fragalign_align::dna::{reverse_complement, smith_waterman, DnaParams};
use fragalign_align::{align_words, ms_words, p_score, p_score_wavefront};
use fragalign_model::symbol::reverse_word;
use fragalign_model::{ScoreTable, Sym};
use proptest::prelude::*;

fn sigma_strategy() -> impl Strategy<Value = ScoreTable> {
    prop::collection::vec(((0u32..6), (0u32..6), -3i64..6), 0..20).prop_map(|entries| {
        let mut t = ScoreTable::new();
        for (a, b, s) in entries {
            t.set(Sym::fwd(a), Sym::fwd(100 + b), s);
        }
        t
    })
}

fn hw() -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(|(i, r)| Sym { id: i, rev: r }),
        0..9,
    )
}

fn mw() -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(|(i, r)| Sym {
            id: 100 + i,
            rev: r,
        }),
        0..9,
    )
}

/// Exponential reference implementation.
fn brute(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> i64 {
    fn rec(sigma: &ScoreTable, u: &[Sym], v: &[Sym], i: usize, j: usize) -> i64 {
        if i == u.len() || j == v.len() {
            return 0;
        }
        (sigma.score(u[i], v[j]) + rec(sigma, u, v, i + 1, j + 1))
            .max(rec(sigma, u, v, i + 1, j))
            .max(rec(sigma, u, v, i, j + 1))
    }
    rec(sigma, u, v, 0, 0)
}

proptest! {
    #[test]
    fn dp_equals_bruteforce(sigma in sigma_strategy(), u in hw(), v in mw()) {
        prop_assert_eq!(p_score(&sigma, &u, &v), brute(&sigma, &u, &v));
    }

    #[test]
    fn p_score_reversal_invariant(sigma in sigma_strategy(), u in hw(), v in mw()) {
        // P(u, v) = P(u^R, v^R)
        prop_assert_eq!(
            p_score(&sigma, &u, &v),
            p_score(&sigma, &reverse_word(&u), &reverse_word(&v))
        );
    }

    #[test]
    fn p_score_monotone_in_extensions(
        sigma in sigma_strategy(), u in hw(), v in mw(), w in mw()
    ) {
        let mut vw = v.clone();
        vw.extend_from_slice(&w);
        prop_assert!(p_score(&sigma, &u, &vw) >= p_score(&sigma, &u, &v));
    }

    #[test]
    fn traceback_score_consistent(sigma in sigma_strategy(), u in hw(), v in mw()) {
        let (score, cols) = align_words(&sigma, &u, &v);
        let col_sum: i64 = cols
            .iter()
            .filter_map(|&(a, b)| Some(sigma.score(u[a?], v[b?])))
            .sum();
        prop_assert_eq!(col_sum, score);
        // Monotone and complete coverage.
        let us: Vec<usize> = cols.iter().filter_map(|c| c.0).collect();
        let vs: Vec<usize> = cols.iter().filter_map(|c| c.1).collect();
        prop_assert_eq!(us, (0..u.len()).collect::<Vec<_>>());
        prop_assert_eq!(vs, (0..v.len()).collect::<Vec<_>>());
    }

    #[test]
    fn ms_is_max_of_orientations(sigma in sigma_strategy(), u in hw(), v in mw()) {
        let (best, _) = ms_words(&sigma, &u, &v);
        let same = p_score(&sigma, &u, &v);
        let rev = p_score(&sigma, &u, &reverse_word(&v));
        prop_assert_eq!(best, same.max(rev));
        prop_assert!(best >= 0);
    }

    #[test]
    fn wavefront_equals_sequential(sigma in sigma_strategy(), u in hw(), v in mw()) {
        prop_assert_eq!(p_score_wavefront(&sigma, &u, &v), p_score(&sigma, &u, &v));
    }

    #[test]
    fn sw_symmetric_and_nonnegative(
        a in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 0..30),
        b in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 0..30),
    ) {
        let p = DnaParams::default();
        let s = smith_waterman(&a, &b, p);
        prop_assert!(s >= 0);
        prop_assert_eq!(s, smith_waterman(&b, &a, p));
        // Aligning against the reverse complement of the reverse
        // complement changes nothing.
        prop_assert_eq!(
            s,
            smith_waterman(&a, &reverse_complement(&reverse_complement(&b)), p)
        );
    }

    #[test]
    fn sw_self_alignment_is_maximal(
        a in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 1..25),
        b in prop::collection::vec(prop::sample::select(b"ACGT".to_vec()), 1..25),
    ) {
        let p = DnaParams::default();
        prop_assert!(smith_waterman(&a, &a, p) >= smith_waterman(&a, &b, p));
        prop_assert_eq!(smith_waterman(&a, &a, p), a.len() as i64 * p.mat);
    }
}
