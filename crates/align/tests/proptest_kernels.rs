//! Differential property tests: every `P_score` kernel path — full
//! matrix, rolling rows, banded at the lossless width, wavefront, and
//! the workspace-reuse variants — must be bit-identical on random
//! words and score tables, including reversed-orientation cases and
//! dirty (previously used, differently sized) workspace buffers.

use fragalign_align::{
    align_words, lossless_band, ms_words, p_score, p_score_banded, p_score_wavefront,
    p_score_wavefront_with, DpMatrix, DpWorkspace, ScoreOracle,
};
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Fragment, Instance, Orient, ScoreTable, Site, Sym};
use proptest::prelude::*;

/// Random σ including negative entries and a non-zero default score
/// (the workspace shortcuts must stay exact when every absent pair
/// scores non-zero).
fn sigma_strategy() -> impl Strategy<Value = ScoreTable> {
    (
        prop::collection::vec(((0u32..6), (0u32..6), any::<bool>(), -3i64..7), 0..24),
        -2i64..=0,
    )
        .prop_map(|(entries, default_score)| {
            let mut t = ScoreTable::new();
            for (a, b, rev, s) in entries {
                let m_side = if rev {
                    Sym::rev(100 + b)
                } else {
                    Sym::fwd(100 + b)
                };
                t.set(Sym::fwd(a), m_side, s);
            }
            t.default_score = default_score;
            t
        })
}

fn word(base: u32) -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(move |(i, r)| Sym {
            id: base + i,
            rev: r,
        }),
        0..14,
    )
}

/// Non-empty variant (fragments may not be empty).
fn word_nonempty(base: u32) -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(move |(i, r)| Sym {
            id: base + i,
            rev: r,
        }),
        1..10,
    )
}

proptest! {
    /// Every kernel path agrees with the rolling-row reference.
    #[test]
    fn all_kernel_paths_agree(sigma in sigma_strategy(), u in word(0), v in word(100)) {
        let reference = p_score(&sigma, &u, &v);
        // Full matrix.
        prop_assert_eq!(DpMatrix::fill(&sigma, &u, &v).score(), reference);
        // Traceback-producing path.
        prop_assert_eq!(align_words(&sigma, &u, &v).0, reference);
        // Banded at the provably lossless width.
        prop_assert_eq!(
            p_score_banded(&sigma, &u, &v, lossless_band(u.len(), v.len())),
            reference
        );
        // Wavefront (sequential fallback region and the real sweep are
        // both covered by the dedicated size test below).
        prop_assert_eq!(p_score_wavefront(&sigma, &u, &v), reference);
        // Workspace-reuse variants, across a dirty buffer: fill a
        // differently-shaped problem first so stale cells would show.
        let mut ws = DpWorkspace::new();
        let big_u: Vec<Sym> = (0..17).map(Sym::fwd).collect();
        let big_v: Vec<Sym> = (0..19).map(|i| Sym::fwd(100 + i)).collect();
        let _ = ws.p_score(&sigma, &big_u, &big_v);
        prop_assert_eq!(ws.p_score(&sigma, &u, &v), reference);
        prop_assert_eq!(ws.p_score_auto(&sigma, &u, &v), reference);
        prop_assert_eq!(p_score_wavefront_with(&sigma, &u, &v, &mut ws), reference);
        prop_assert_eq!(
            ws.p_score_banded(&sigma, &u, &v, lossless_band(u.len(), v.len())),
            reference
        );
    }

    /// Orientation search: the workspace `MS` (scan + early exit +
    /// banded routing) matches the allocating free function, and both
    /// respect the reversal identity `P(u, v) = P(u^R, v^R)`.
    #[test]
    fn ms_paths_agree_including_reversed(
        sigma in sigma_strategy(), u in word(0), v in word(100)
    ) {
        let mut ws = DpWorkspace::new();
        let free = ms_words(&sigma, &u, &v);
        prop_assert_eq!(ws.ms_words(&sigma, &u, &v), free);
        // Pinned orientations.
        let vr = reverse_word(&v);
        prop_assert_eq!(
            ws.p_score_oriented(&sigma, &u, &v, Orient::Same),
            p_score(&sigma, &u, &v)
        );
        prop_assert_eq!(
            ws.p_score_oriented(&sigma, &u, &v, Orient::Reversed),
            p_score(&sigma, &u, &vr)
        );
        // Reversal invariance through the workspace path.
        let ur = reverse_word(&u);
        prop_assert_eq!(
            ws.p_score_auto(&sigma, &ur, &vr),
            p_score(&sigma, &u, &v)
        );
    }

    /// The band is monotone: a wider window never scores less, every
    /// width is a lower bound of the full DP, and the lossless width
    /// reaches it.
    #[test]
    fn banded_monotone_lower_bound(
        sigma in sigma_strategy(), u in word(0), v in word(100)
    ) {
        let full = p_score(&sigma, &u, &v);
        let lossless = lossless_band(u.len(), v.len());
        let mut prev_score = None;
        for band in 0..=lossless {
            let banded = p_score_banded(&sigma, &u, &v, band);
            prop_assert!(banded <= full, "band {band}: {banded} > {full}");
            if let Some(p) = prev_score {
                prop_assert!(banded >= p, "band {band} lost score over band {}", band - 1);
            }
            prev_score = Some(banded);
        }
        prop_assert_eq!(p_score_banded(&sigma, &u, &v, lossless), full);
    }

    /// Oracle entry points: the pooled-workspace oracle, the
    /// per-call-allocation oracle, and explicit caller workspaces all
    /// produce identical interval tables and site-pair scores.
    #[test]
    fn oracle_paths_agree(
        sigma in sigma_strategy(),
        h0 in word_nonempty(0), h1 in word_nonempty(0),
        m0 in word_nonempty(100), m1 in word_nonempty(100)
    ) {
        let inst = Instance {
            h: vec![Fragment::new("h0", h0), Fragment::new("h1", h1)],
            m: vec![Fragment::new("m0", m0), Fragment::new("m1", m1)],
            sigma,
            alphabet: Default::default(),
        };
        let pooled = ScoreOracle::new(&inst);
        let baseline = ScoreOracle::with_workspace_reuse(&inst, false);
        let mut caller_ws = DpWorkspace::new();
        for plug in inst.all_frag_ids() {
            for container in inst.all_frag_ids() {
                if plug.species == container.species {
                    continue;
                }
                let a = pooled.interval_table(plug, container);
                let b = baseline.interval_table(plug, container);
                let c = pooled.interval_table_with(plug, container, &mut caller_ws);
                let n = inst.frag_len(container);
                for d in 0..=n {
                    for e in d..=n {
                        prop_assert_eq!(a.get(d, e), b.get(d, e));
                        prop_assert_eq!(a.get(d, e), c.get(d, e));
                    }
                }
            }
        }
        let h_site = Site::full(FragId::h(0), inst.frag_len(FragId::h(0)));
        let m_site = Site::full(FragId::m(0), inst.frag_len(FragId::m(0)));
        prop_assert_eq!(pooled.ms(h_site, m_site), baseline.ms(h_site, m_site));
        for orient in [Orient::Same, Orient::Reversed] {
            prop_assert_eq!(
                pooled.ms_oriented(h_site, m_site, orient),
                baseline.ms_oriented(h_site, m_site, orient)
            );
        }
    }
}

/// The wavefront cutoff hides the parallel sweep from small proptest
/// words; cover the real sweep (and the workspace variant's resized
/// diagonals) at sizes beyond the cutoff.
#[test]
fn wavefront_paths_agree_beyond_cutoff() {
    let mut sigma = ScoreTable::new();
    for a in 0..8u32 {
        for b in 0..8u32 {
            if (a * 5 + b) % 3 != 0 {
                sigma.set(Sym::fwd(a), Sym::fwd(100 + b), ((a + 2 * b) % 5) as i64 - 1);
            }
        }
    }
    let mk = |seed: u64, len: usize, base: u32| -> Vec<Sym> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Sym::fwd(base + (state % 8) as u32)
            })
            .collect()
    };
    let mut ws = DpWorkspace::new();
    for (lu, lv) in [(600, 600), (520, 700)] {
        let u = mk(lu as u64, lu, 0);
        let v = mk(lv as u64 + 7, lv, 100);
        let reference = p_score(&sigma, &u, &v);
        assert_eq!(p_score_wavefront(&sigma, &u, &v), reference);
        assert_eq!(p_score_wavefront_with(&sigma, &u, &v, &mut ws), reference);
    }
}
