//! Differential property tests: every `P_score` kernel path — full
//! matrix, rolling rows, banded at the lossless width, wavefront, and
//! the workspace-reuse variants — must be bit-identical on random
//! words and score tables, including reversed-orientation cases and
//! dirty (previously used, differently sized) workspace buffers.

use fragalign_align::{
    align_words, lossless_band, ms_words, p_score, p_score_banded, p_score_wavefront,
    p_score_wavefront_with, DpMatrix, DpWorkspace, KernelMode, ScoreOracle, KERNEL_BLOCK,
};
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Fragment, Instance, Orient, ScoreTable, Site, Sym};
use proptest::prelude::*;

const ALL_MODES: [KernelMode; 3] = [
    KernelMode::Scalar,
    KernelMode::Profiled,
    KernelMode::ProfiledBlocked,
];

/// Random σ including negative entries and a non-zero default score
/// (the workspace shortcuts must stay exact when every absent pair
/// scores non-zero).
fn sigma_strategy() -> impl Strategy<Value = ScoreTable> {
    (
        prop::collection::vec(((0u32..6), (0u32..6), any::<bool>(), -3i64..7), 0..24),
        -2i64..=0,
    )
        .prop_map(|(entries, default_score)| {
            let mut t = ScoreTable::new();
            for (a, b, rev, s) in entries {
                let m_side = if rev {
                    Sym::rev(100 + b)
                } else {
                    Sym::fwd(100 + b)
                };
                t.set(Sym::fwd(a), m_side, s);
            }
            t.default_score = default_score;
            t
        })
}

fn word(base: u32) -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(move |(i, r)| Sym {
            id: base + i,
            rev: r,
        }),
        0..14,
    )
}

/// Non-empty variant (fragments may not be empty).
fn word_nonempty(base: u32) -> impl Strategy<Value = Vec<Sym>> {
    prop::collection::vec(
        (0u32..6, any::<bool>()).prop_map(move |(i, r)| Sym {
            id: base + i,
            rev: r,
        }),
        1..10,
    )
}

proptest! {
    /// Every kernel path agrees with the rolling-row reference.
    #[test]
    fn all_kernel_paths_agree(sigma in sigma_strategy(), u in word(0), v in word(100)) {
        let reference = p_score(&sigma, &u, &v);
        // Full matrix.
        prop_assert_eq!(DpMatrix::fill(&sigma, &u, &v).score(), reference);
        // Traceback-producing path.
        prop_assert_eq!(align_words(&sigma, &u, &v).0, reference);
        // Banded at the provably lossless width.
        prop_assert_eq!(
            p_score_banded(&sigma, &u, &v, lossless_band(u.len(), v.len())),
            reference
        );
        // Wavefront (sequential fallback region and the real sweep are
        // both covered by the dedicated size test below).
        prop_assert_eq!(p_score_wavefront(&sigma, &u, &v), reference);
        // Workspace-reuse variants, across a dirty buffer: fill a
        // differently-shaped problem first so stale cells would show.
        let mut ws = DpWorkspace::new();
        let big_u: Vec<Sym> = (0..17).map(Sym::fwd).collect();
        let big_v: Vec<Sym> = (0..19).map(|i| Sym::fwd(100 + i)).collect();
        let _ = ws.p_score(&sigma, &big_u, &big_v);
        prop_assert_eq!(ws.p_score(&sigma, &u, &v), reference);
        prop_assert_eq!(ws.p_score_auto(&sigma, &u, &v), reference);
        prop_assert_eq!(p_score_wavefront_with(&sigma, &u, &v, &mut ws), reference);
        prop_assert_eq!(
            ws.p_score_banded(&sigma, &u, &v, lossless_band(u.len(), v.len())),
            reference
        );
        // Forced kernel modes through the same dirty workspace.
        for mode in ALL_MODES {
            prop_assert_eq!(ws.p_score_kernel(&sigma, &u, &v, mode), reference, "{mode:?}");
        }
        // Workspace traceback path: same score, same columns as the
        // allocating free function.
        let (free_score, free_cols) = align_words(&sigma, &u, &v);
        let (ws_score, ws_cols) = ws.align_words(&sigma, &u, &v);
        prop_assert_eq!(ws_score, free_score);
        prop_assert_eq!(ws_cols, free_cols);
    }

    /// The profiled kernels on degenerate alphabets: every row symbol
    /// identical (one profile row serving every DP row), with mixed
    /// orientation flags and both operand orders.
    #[test]
    fn profiled_kernels_on_degenerate_alphabets(
        sigma in sigma_strategy(),
        revs_u in prop::collection::vec(any::<bool>(), 0..40),
        revs_v in prop::collection::vec(any::<bool>(), 0..40),
        uid in 0u32..6, vid in 0u32..6,
    ) {
        let u: Vec<Sym> = revs_u.iter().map(|&r| Sym { id: uid, rev: r }).collect();
        let v: Vec<Sym> = revs_v.iter().map(|&r| Sym { id: 100 + vid, rev: r }).collect();
        let reference = p_score(&sigma, &u, &v);
        let mut ws = DpWorkspace::new();
        for mode in ALL_MODES {
            prop_assert_eq!(ws.p_score_kernel(&sigma, &u, &v, mode), reference, "{mode:?}");
        }
    }

    /// Orientation search: the workspace `MS` (scan + early exit +
    /// banded routing) matches the allocating free function, and both
    /// respect the reversal identity `P(u, v) = P(u^R, v^R)`.
    #[test]
    fn ms_paths_agree_including_reversed(
        sigma in sigma_strategy(), u in word(0), v in word(100)
    ) {
        let mut ws = DpWorkspace::new();
        let free = ms_words(&sigma, &u, &v);
        prop_assert_eq!(ws.ms_words(&sigma, &u, &v), free);
        // Pinned orientations.
        let vr = reverse_word(&v);
        prop_assert_eq!(
            ws.p_score_oriented(&sigma, &u, &v, Orient::Same),
            p_score(&sigma, &u, &v)
        );
        prop_assert_eq!(
            ws.p_score_oriented(&sigma, &u, &v, Orient::Reversed),
            p_score(&sigma, &u, &vr)
        );
        // Reversal invariance through the workspace path.
        let ur = reverse_word(&u);
        prop_assert_eq!(
            ws.p_score_auto(&sigma, &ur, &vr),
            p_score(&sigma, &u, &v)
        );
    }

    /// The band is monotone: a wider window never scores less, every
    /// width is a lower bound of the full DP, and the lossless width
    /// reaches it.
    #[test]
    fn banded_monotone_lower_bound(
        sigma in sigma_strategy(), u in word(0), v in word(100)
    ) {
        let full = p_score(&sigma, &u, &v);
        let lossless = lossless_band(u.len(), v.len());
        let mut prev_score = None;
        for band in 0..=lossless {
            let banded = p_score_banded(&sigma, &u, &v, band);
            prop_assert!(banded <= full, "band {band}: {banded} > {full}");
            if let Some(p) = prev_score {
                prop_assert!(banded >= p, "band {band} lost score over band {}", band - 1);
            }
            prev_score = Some(banded);
        }
        prop_assert_eq!(p_score_banded(&sigma, &u, &v, lossless), full);
    }

    /// Oracle entry points: the pooled-workspace oracle, the
    /// per-call-allocation oracle, and explicit caller workspaces all
    /// produce identical interval tables and site-pair scores.
    #[test]
    fn oracle_paths_agree(
        sigma in sigma_strategy(),
        h0 in word_nonempty(0), h1 in word_nonempty(0),
        m0 in word_nonempty(100), m1 in word_nonempty(100)
    ) {
        let inst = Instance {
            h: vec![Fragment::new("h0", h0), Fragment::new("h1", h1)],
            m: vec![Fragment::new("m0", m0), Fragment::new("m1", m1)],
            sigma,
            alphabet: Default::default(),
        };
        let pooled = ScoreOracle::new(&inst);
        let baseline = ScoreOracle::with_workspace_reuse(&inst, false);
        let mut caller_ws = DpWorkspace::new();
        for plug in inst.all_frag_ids() {
            for container in inst.all_frag_ids() {
                if plug.species == container.species {
                    continue;
                }
                let a = pooled.interval_table(plug, container);
                let b = baseline.interval_table(plug, container);
                let c = pooled.interval_table_with(plug, container, &mut caller_ws);
                let n = inst.frag_len(container);
                for d in 0..=n {
                    for e in d..=n {
                        prop_assert_eq!(a.get(d, e), b.get(d, e));
                        prop_assert_eq!(a.get(d, e), c.get(d, e));
                    }
                }
            }
        }
        let h_site = Site::full(FragId::h(0), inst.frag_len(FragId::h(0)));
        let m_site = Site::full(FragId::m(0), inst.frag_len(FragId::m(0)));
        prop_assert_eq!(pooled.ms(h_site, m_site), baseline.ms(h_site, m_site));
        for orient in [Orient::Same, Orient::Reversed] {
            prop_assert_eq!(
                pooled.ms_oriented(h_site, m_site, orient),
                baseline.ms_oriented(h_site, m_site, orient)
            );
        }
    }
}

/// The wavefront cutoff hides the parallel sweep from small proptest
/// words; cover the real sweep (and the workspace variant's resized
/// diagonals) at sizes beyond the cutoff.
#[test]
fn wavefront_paths_agree_beyond_cutoff() {
    let mut sigma = ScoreTable::new();
    for a in 0..8u32 {
        for b in 0..8u32 {
            if (a * 5 + b) % 3 != 0 {
                sigma.set(Sym::fwd(a), Sym::fwd(100 + b), ((a + 2 * b) % 5) as i64 - 1);
            }
        }
    }
    let mk = |seed: u64, len: usize, base: u32| -> Vec<Sym> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Sym::fwd(base + (state % 8) as u32)
            })
            .collect()
    };
    let mut ws = DpWorkspace::new();
    for (lu, lv) in [(600, 600), (520, 700)] {
        let u = mk(lu as u64, lu, 0);
        let v = mk(lv as u64 + 7, lv, 100);
        let reference = p_score(&sigma, &u, &v);
        assert_eq!(p_score_wavefront(&sigma, &u, &v), reference);
        assert_eq!(p_score_wavefront_with(&sigma, &u, &v, &mut ws), reference);
    }
}

/// Deterministic word over a small alphabet with mixed orientations.
fn mixed_word(seed: u64, len: usize, base: u32) -> Vec<Sym> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            Sym {
                id: base + (state % 6) as u32,
                rev: state.is_multiple_of(3),
            }
        })
        .collect()
}

fn dense_sigma() -> ScoreTable {
    let mut sigma = ScoreTable::new();
    for a in 0..6u32 {
        for b in 0..6u32 {
            let m = if (a + b) % 2 == 0 {
                Sym::rev(100 + b)
            } else {
                Sym::fwd(100 + b)
            };
            sigma.set(Sym::fwd(a), m, ((a * 5 + b * 3) % 9) as i64 - 3);
        }
    }
    sigma.default_score = -1;
    sigma
}

/// The blocked kernel at column widths straddling the block boundary:
/// `KERNEL_BLOCK ± 1`, exactly `KERNEL_BLOCK`, and the two-block
/// boundary `2·KERNEL_BLOCK ± 1` — the off-by-one shapes a fixed-width
/// blocking bug would corrupt. Small proptest words never reach these
/// widths, so they are pinned here.
#[test]
fn blocked_kernel_straddles_block_boundaries() {
    let sigma = dense_sigma();
    let mut ws = DpWorkspace::new();
    for lv in [
        KERNEL_BLOCK - 1,
        KERNEL_BLOCK,
        KERNEL_BLOCK + 1,
        2 * KERNEL_BLOCK - 1,
        2 * KERNEL_BLOCK + 1,
    ] {
        // Column word longer than the row word so the internal
        // shorter-word swap keeps `lv` on the column axis.
        let u = mixed_word(3, 60, 0);
        let v = mixed_word(lv as u64, lv, 100);
        let reference = p_score(&sigma, &u, &v);
        for mode in ALL_MODES {
            assert_eq!(
                ws.p_score_kernel(&sigma, &u, &v, mode),
                reference,
                "cols {lv} mode {mode:?}"
            );
        }
    }
}

/// Stale-tail regression: run a wide fill, then strictly narrower
/// fills through every kernel entry point on the *same* workspace.
/// Any kernel that trusts a buffer cell it did not rewrite for the
/// current width reads the wide fill's leftovers and diverges from a
/// fresh-workspace reference. (Audit note: `fill_rolling` zeroes
/// `prev[..cols]` and writes `cur[..cols]` before reading;
/// `fill_banded` writes each row window before the next row reads it;
/// the profiled kernels zero `prev`, `carry`, and the per-block base
/// row — this test pins all of that against regression.)
#[test]
fn shrinking_buffers_never_leak_stale_tails() {
    let sigma = dense_sigma();
    let mut ws = DpWorkspace::new();
    // Wide fill: bigger than everything that follows, filling
    // prev/cur/carry/grid/profile with large-problem leftovers.
    let wide_u = mixed_word(11, 90, 0);
    let wide_v = mixed_word(12, 2 * KERNEL_BLOCK + 50, 100);
    let _ = ws.p_score_kernel(&sigma, &wide_u, &wide_v, KernelMode::ProfiledBlocked);
    let _ = ws.align_words(&sigma, &wide_u, &mixed_word(13, 70, 100));

    for (seed, lu, lv) in [
        (1u64, 9, 60),
        (2, 17, 5),
        (3, 1, 1),
        (4, 40, KERNEL_BLOCK + 3),
    ] {
        let u = mixed_word(seed * 7 + 1, lu, 0);
        let v = mixed_word(seed * 7 + 2, lv, 100);
        let reference = p_score(&sigma, &u, &v);
        for mode in ALL_MODES {
            assert_eq!(
                ws.p_score_kernel(&sigma, &u, &v, mode),
                reference,
                "{lu}x{lv} {mode:?}"
            );
        }
        assert_eq!(ws.p_score(&sigma, &u, &v), reference);
        assert_eq!(ws.p_score_auto(&sigma, &u, &v), reference);
        assert_eq!(
            ws.p_score_banded(&sigma, &u, &v, lossless_band(u.len(), v.len())),
            reference,
            "banded {lu}x{lv}"
        );
        assert_eq!(ws.ms_words(&sigma, &u, &v), ms_words(&sigma, &u, &v));
        let (score, cols) = ws.align_words(&sigma, &u, &v);
        let (free_score, free_cols) = align_words(&sigma, &u, &v);
        assert_eq!(score, free_score, "align_words score {lu}x{lv}");
        assert_eq!(cols, free_cols, "align_words columns {lu}x{lv}");
    }

    // The oracle sweep through the same (adopted) workspace: interval
    // tables after the wide fill must match a fresh oracle's.
    let inst = Instance {
        h: vec![Fragment::new("h0", mixed_word(21, 7, 0))],
        m: vec![Fragment::new("m0", mixed_word(22, 9, 100))],
        sigma: dense_sigma(),
        alphabet: Default::default(),
    };
    let dirty = ScoreOracle::new(&inst);
    dirty.adopt_workspace(ws);
    let fresh = ScoreOracle::new(&inst);
    let a = dirty.interval_table(FragId::h(0), FragId::m(0));
    let b = fresh.interval_table(FragId::h(0), FragId::m(0));
    for d in 0..=9 {
        for e in d..=9 {
            assert_eq!(a.get(d, e), b.get(d, e), "interval [{d},{e})");
        }
    }
}
