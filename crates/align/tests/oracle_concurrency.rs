//! Hammer one shared `ScoreOracle` from many threads: results must be
//! stable (no torn cache fills under the `parking_lot` shim), the
//! hit/miss counters coherent, and the workspace pool must neither
//! lose nor fabricate fills.

use fragalign_align::ScoreOracle;
use fragalign_model::{FragId, Fragment, Instance, Orient, ScoreTable, Site, Sym};
use std::sync::atomic::Ordering;

/// A hand-built instance with enough fragments for contended queries
/// (the align crate cannot dev-depend on the simulator — that would be
/// a dependency cycle — so the workload is explicit).
fn contended_instance() -> Instance {
    let word = |base: u32, ids: &[u32]| -> Vec<Sym> {
        ids.iter()
            .map(|&i| Sym {
                id: base + i,
                rev: i % 3 == 0,
            })
            .collect()
    };
    let mut sigma = ScoreTable::new();
    for a in 0..8u32 {
        for b in 0..8u32 {
            let s = ((a * 7 + b * 5) % 11) as i64 - 2;
            if s != 0 {
                sigma.set(Sym::fwd(a), Sym::fwd(100 + b), s);
            }
        }
    }
    Instance {
        h: vec![
            Fragment::new("h0", word(0, &[0, 1, 2, 3, 4])),
            Fragment::new("h1", word(0, &[5, 6, 7, 0, 2])),
            Fragment::new("h2", word(0, &[3, 3, 1])),
        ],
        m: vec![
            Fragment::new("m0", word(100, &[0, 2, 4, 6])),
            Fragment::new("m1", word(100, &[7, 5, 3, 1, 0])),
            Fragment::new("m2", word(100, &[6, 6])),
        ],
        sigma,
        alphabet: Default::default(),
    }
}

#[test]
fn concurrent_queries_are_stable_and_counters_coherent() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 40;

    let inst = contended_instance();
    // Reference answers from an uncontended oracle.
    let reference = ScoreOracle::new(&inst);
    let queries: Vec<(FragId, FragId)> = inst
        .frag_ids(fragalign_model::Species::H)
        .flat_map(|h| {
            inst.frag_ids(fragalign_model::Species::M)
                .map(move |m| (h, m))
        })
        .collect();
    let expected_tables: Vec<Vec<(i64, Orient)>> = queries
        .iter()
        .map(|&(h, m)| {
            let t = reference.interval_table(h, m);
            let n = inst.frag_len(m);
            (0..=n)
                .flat_map(|d| (d..=n).map(move |e| (d, e)))
                .map(|(d, e)| t.get(d, e))
                .collect()
        })
        .collect();
    let h_site = Site::full(FragId::h(0), inst.frag_len(FragId::h(0)));
    let m_site = Site::full(FragId::m(1), inst.frag_len(FragId::m(1)));
    let expected_ms = reference.ms(h_site, m_site);
    let expected_oriented = reference.ms_oriented(h_site, m_site, Orient::Reversed);

    let oracle = ScoreOracle::new(&inst);
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            let oracle = &oracle;
            let queries = &queries;
            let expected_tables = &expected_tables;
            let inst = &inst;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    // Stagger start offsets so threads collide on
                    // different keys each round.
                    let shift = (worker + round) % queries.len();
                    for idx in 0..queries.len() {
                        let (h, m) = queries[(idx + shift) % queries.len()];
                        let table = oracle.interval_table(h, m);
                        let n = inst.frag_len(m);
                        let got: Vec<(i64, Orient)> = (0..=n)
                            .flat_map(|d| (d..=n).map(move |e| (d, e)))
                            .map(|(d, e)| table.get(d, e))
                            .collect();
                        assert_eq!(
                            got,
                            expected_tables[(idx + shift) % queries.len()],
                            "torn interval table for {h:?}/{m:?}"
                        );
                    }
                    assert_eq!(oracle.ms(h_site, m_site), expected_ms);
                    assert_eq!(
                        oracle.ms_oriented(h_site, m_site, Orient::Reversed),
                        expected_oriented
                    );
                }
            });
        }
    });

    // Counter coherence: every lookup is either a hit or a miss.
    let table_lookups = (THREADS * ROUNDS * queries.len()) as u64;
    let hits = oracle.stats.table_hits.load(Ordering::Relaxed);
    let misses = oracle.stats.table_misses.load(Ordering::Relaxed);
    assert_eq!(hits + misses, table_lookups, "table lookups miscounted");
    // Every distinct key misses at least once; racing threads may both
    // miss the same key (benign double fill), but never more often
    // than once per thread.
    assert!(misses >= queries.len() as u64);
    assert!(misses <= (queries.len() * THREADS) as u64);

    let pair_lookups = (THREADS * ROUNDS * 2) as u64;
    let pair_hits = oracle.stats.pair_hits.load(Ordering::Relaxed);
    let pair_misses = oracle.stats.pair_misses.load(Ordering::Relaxed);
    assert_eq!(
        pair_hits + pair_misses,
        pair_lookups,
        "pair lookups miscounted"
    );
    assert!(pair_misses >= 2 && pair_misses <= (2 * THREADS) as u64);

    // Workspace accounting: fills happened (misses ran DPs), and with
    // pooling on, buffer growth stays far below the fill count.
    let fills = oracle.stats.dp_fills.load(Ordering::Relaxed);
    let reallocs = oracle.stats.dp_reallocs.load(Ordering::Relaxed);
    assert!(fills > 0, "misses must run DP fills");
    assert!(
        reallocs <= (THREADS * 4) as u64,
        "pooled workspaces re-allocated {reallocs} times over {fills} fills"
    );
}

#[test]
fn rayon_pool_hammer_matches_uncontended_oracle() {
    // The same contention pattern as the scoped-thread hammer, but
    // driven through the rayon shim's real worker pool — the pool the
    // batch pipeline and the portfolio actually run on — instead of
    // hand-spawned threads. Every query against the shared oracle must
    // equal the uncontended reference at every pool width.
    use rayon::prelude::*;

    let inst = contended_instance();
    let reference = ScoreOracle::new(&inst);
    let queries: Vec<(FragId, FragId)> = inst
        .frag_ids(fragalign_model::Species::H)
        .flat_map(|h| {
            inst.frag_ids(fragalign_model::Species::M)
                .map(move |m| (h, m))
        })
        .collect();
    let expected: Vec<Vec<(i64, Orient)>> = queries
        .iter()
        .map(|&(h, m)| {
            let t = reference.interval_table(h, m);
            let n = inst.frag_len(m);
            (0..=n)
                .flat_map(|d| (d..=n).map(move |e| (d, e)))
                .map(|(d, e)| t.get(d, e))
                .collect()
        })
        .collect();

    for threads in [2, 8] {
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(threads)
            .build()
            .expect("pool builds");
        let oracle = ScoreOracle::new(&inst);
        pool.install(|| {
            // 64 hammer tasks per width, each walking every query with
            // a different stagger so workers collide on different keys.
            (0..64usize).into_par_iter().for_each(|shift| {
                for idx in 0..queries.len() {
                    let slot = (idx + shift) % queries.len();
                    let (h, m) = queries[slot];
                    let table = oracle.interval_table(h, m);
                    let n = inst.frag_len(m);
                    let got: Vec<(i64, Orient)> = (0..=n)
                        .flat_map(|d| (d..=n).map(move |e| (d, e)))
                        .map(|(d, e)| table.get(d, e))
                        .collect();
                    assert_eq!(got, expected[slot], "torn table for {h:?}/{m:?}");
                }
            });
        });
        // Counter coherence holds under the pool too.
        let hits = oracle.stats.table_hits.load(Ordering::Relaxed);
        let misses = oracle.stats.table_misses.load(Ordering::Relaxed);
        assert_eq!(hits + misses, (64 * queries.len()) as u64);
        assert!(misses >= queries.len() as u64);
    }
}

#[test]
fn concurrent_adopt_reclaim_round_trips_workspaces() {
    let inst = contended_instance();
    let oracle = ScoreOracle::new(&inst);
    std::thread::scope(|scope| {
        for _ in 0..4 {
            let oracle = &oracle;
            scope.spawn(move || {
                for _ in 0..50 {
                    let ws = oracle.reclaim_workspace();
                    oracle.adopt_workspace(ws);
                }
            });
        }
    });
    // The pool survives arbitrary interleavings and the oracle still
    // answers correctly afterwards.
    let t = oracle.interval_table(FragId::h(0), FragId::m(0));
    let direct = ScoreOracle::new(&inst);
    let d = direct.interval_table(FragId::h(0), FragId::m(0));
    let n = inst.frag_len(FragId::m(0));
    for lo in 0..=n {
        for hi in lo..=n {
            assert_eq!(t.get(lo, hi), d.get(lo, hi));
        }
    }
}
