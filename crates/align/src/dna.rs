//! Nucleotide-level alignment substrate.
//!
//! The paper assumes the region scores `σ(a, b)` are given — in
//! practice they come from DNA local alignments between conserved
//! regions (the paper's group used BLAST-like tools). To exercise that
//! code path end to end, the simulator generates actual nucleotide
//! sequences for regions and derives `σ` with this from-scratch
//! Smith–Waterman aligner, searching both strands.

use fragalign_model::{Orient, Score};

/// A DNA base, stored as one of `b"ACGT"`.
pub type Base = u8;

/// Watson–Crick complement of one base; unknown bytes map to `N`.
#[inline]
pub fn complement(b: Base) -> Base {
    match b {
        b'A' => b'T',
        b'T' => b'A',
        b'C' => b'G',
        b'G' => b'C',
        other => other,
    }
}

/// Reverse complement of a sequence.
pub fn reverse_complement(seq: &[Base]) -> Vec<Base> {
    seq.iter().rev().map(|&b| complement(b)).collect()
}

/// Scoring parameters for the local aligner.
#[derive(Clone, Copy, Debug)]
pub struct DnaParams {
    /// Score for a matching column (> 0).
    pub mat: Score,
    /// Score for a mismatching column (< 0).
    pub mis: Score,
    /// Score for a gap column (< 0); linear gap model.
    pub gap: Score,
}

impl Default for DnaParams {
    fn default() -> Self {
        // The classic +1/−1/−1 unit costs; match/mismatch ratios of
        // real tools differ but only scale σ.
        DnaParams {
            mat: 2,
            mis: -1,
            gap: -2,
        }
    }
}

/// Smith–Waterman local alignment score (score only, rolling rows,
/// `O(|a|·|b|)` time, `O(min)` memory).
pub fn smith_waterman(a: &[Base], b: &[Base], p: DnaParams) -> Score {
    if a.is_empty() || b.is_empty() {
        return 0;
    }
    let (rows, cols, swapped) = if b.len() <= a.len() {
        (a, b, false)
    } else {
        (b, a, true)
    };
    let _ = swapped; // symmetric scoring: swap is free
    let m = cols.len();
    let mut prev = vec![0 as Score; m + 1];
    let mut cur = vec![0 as Score; m + 1];
    let mut best = 0;
    for i in 1..=rows.len() {
        let ri = rows[i - 1];
        cur[0] = 0;
        for j in 1..=m {
            let sub = if ri == cols[j - 1] { p.mat } else { p.mis };
            let val = (prev[j - 1] + sub)
                .max(prev[j] + p.gap)
                .max(cur[j - 1] + p.gap)
                .max(0);
            cur[j] = val;
            if val > best {
                best = val;
            }
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    best
}

/// Best local alignment over both strands of `b`: the score and the
/// orientation that achieved it (ties prefer `Same`).
pub fn best_local_score(a: &[Base], b: &[Base], p: DnaParams) -> (Score, Orient) {
    let fwd = smith_waterman(a, b, p);
    let rc = reverse_complement(b);
    let rev = smith_waterman(a, &rc, p);
    if rev > fwd {
        (rev, Orient::Reversed)
    } else {
        (fwd, Orient::Same)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complement_pairs() {
        assert_eq!(complement(b'A'), b'T');
        assert_eq!(complement(b'T'), b'A');
        assert_eq!(complement(b'C'), b'G');
        assert_eq!(complement(b'G'), b'C');
        assert_eq!(complement(b'N'), b'N');
    }

    #[test]
    fn reverse_complement_involution() {
        let s = b"ACGTTGCA".to_vec();
        assert_eq!(reverse_complement(&reverse_complement(&s)), s);
        assert_eq!(reverse_complement(b"AACG"), b"CGTT".to_vec());
    }

    #[test]
    fn identical_sequences_score_full_match() {
        let p = DnaParams::default();
        let s = b"ACGTACGT";
        assert_eq!(smith_waterman(s, s, p), 8 * p.mat);
    }

    #[test]
    fn local_alignment_ignores_flanks() {
        let p = DnaParams::default();
        // The common core "ACGTACGT" is embedded in unrelated flanks.
        let a = b"TTTTTACGTACGTTTTTT";
        let b = b"GGGGACGTACGTGGGG";
        assert_eq!(smith_waterman(a, b, p), 8 * p.mat);
    }

    #[test]
    fn mismatches_reduce_score() {
        let p = DnaParams::default();
        let a = b"ACGTACGT";
        let b = b"ACGAACGT"; // one mismatch in the middle
        let s = smith_waterman(a, b, p);
        assert!(s >= 7 * p.mat + p.mis, "got {s}");
        assert!(s < 8 * p.mat);
    }

    #[test]
    fn score_never_negative() {
        let p = DnaParams::default();
        assert_eq!(smith_waterman(b"AAAA", b"TTTT", p), 0);
        assert_eq!(smith_waterman(b"", b"ACGT", p), 0);
    }

    #[test]
    fn reverse_strand_detected() {
        let p = DnaParams::default();
        let a = b"AAAACCCCGGGG".to_vec();
        let b = reverse_complement(&a);
        let (s, o) = best_local_score(&a, &b, p);
        assert_eq!(o, Orient::Reversed);
        assert_eq!(s, a.len() as Score * p.mat);
    }

    #[test]
    fn swap_symmetry() {
        let p = DnaParams::default();
        let a = b"ACGTAGGCTA";
        let b = b"CGTAGG";
        assert_eq!(smith_waterman(a, b, p), smith_waterman(b, a, p));
    }
}
