//! Anchor-chaining solver tier: k-mer/minimizer anchors + LIS
//! chaining + windowed DP.
//!
//! Every other solver in the registry ultimately pays full DP over
//! region pairs — `O(|h| · n²)` interval tables against the whole
//! concatenated M species — which gates instances with thousands of
//! regions. This module is the classic fragment-chaining pipeline
//! instead (the lLukal/BIO1 shape; see also Allali et al., *Chaining
//! fragments in sequences: to sweep or not*):
//!
//! 1. **Anchor index** — concatenate the M fragments in order and
//!    index every laid symbol occurrence by position; invert the
//!    positive σ entries so each H symbol knows its potential
//!    M partners.
//! 2. **Seeds** — slide a `k`-symbol window over each H fragment in
//!    both laid orientations; when every one of the `k` consecutive
//!    pairs scores positively against a run of concat-M, that
//!    `(h position, m position)` pair is an *anchor* weighted by its
//!    σ sum. Long fragments are subsampled with `(k, w)` minimizers —
//!    only window-minimal hash positions seed anchors — bounding the
//!    anchor count at roughly `2·L/w` per fragment.
//! 3. **Chaining** — per fragment and orientation, the maximum-weight
//!    strictly-increasing chain of anchors (LIS on `(p, j)` with a
//!    prefix-max Fenwick tree, `O(A log A)`); the better orientation
//!    wins.
//! 4. **Window selection** — each chained fragment claims the concat-M
//!    span of its chain; overlapping claims are resolved by weighted
//!    interval scheduling, then the disjoint windows are padded by
//!    `margin` regions into the gaps between them.
//! 5. **Windowed DP** — the existing `P_score` kernel with traceback
//!    ([`crate::dp::align_words`]) runs *only inside each window* —
//!    the window is the band — and the columns stream through a
//!    [`PairAssembler`] exactly like the factor-4 materialisation, so
//!    the result is a consistent [`MatchSet`] by construction
//!    (Definition 2 / Remark 1).
//!
//! Total cost is anchor generation plus `O(L · (L + 2·margin))` DP per
//! chained fragment, independent of the concat length `n` — against
//! the DP family's `O(L · n²)` — so genome-scale instances the exact
//! and improvement tiers cannot touch become solvable. The price is
//! the approximation: a fragment recovers matches only inside its one
//! chained window, and there is no worst-case ratio.
//!
//! ## Parameter defaults
//!
//! Region alphabets are high-entropy — a conserved-region id is
//! nearly unique per species, unlike a 4-letter DNA alphabet — so
//! single-symbol seeds are already specific and [`ChainParams::k`]
//! defaults to 1. Raise `k` on repetitive alphabets where spurious
//! single-symbol hits would flood the chainer; the verification step
//! requires all `k` consecutive pairs to score positively. `w` is the
//! minimizer window (subsampling engages only when a fragment has
//! more than `w` seed starts) and `margin` pads each chained window
//! so flanking matches just outside the chain span still reach the
//! DP.

use crate::oracle::ScoreOracle;
use fragalign_model::conjecture::PairAssembler;
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Instance, MatchSet, Orient, Score, Species, Sym};
use fragalign_obs::span;
use std::collections::HashMap;

/// Tuning knobs of the chaining pipeline. See the module docs for the
/// reasoning behind the defaults.
#[derive(Clone, Copy, Debug)]
pub struct ChainParams {
    /// Seed length in regions: an anchor needs `k` consecutive
    /// σ-positive pairs. Fragments shorter than `k` seed with their
    /// full length instead of going dark.
    pub k: usize,
    /// Minimizer window: of every `w` consecutive seed starts, only
    /// the hash-minimal ones generate anchors. Fragments with at most
    /// `w` starts keep every position.
    pub w: usize,
    /// Padding, in regions, added to each side of a chained window
    /// before the DP (clipped so windows stay disjoint).
    pub margin: usize,
    /// Cap on anchor matches per kept seed position (ascending concat
    /// position, deterministic); guards repetitive regions from
    /// quadratic anchor blowup.
    pub max_anchors_per_seed: usize,
}

impl Default for ChainParams {
    fn default() -> Self {
        ChainParams {
            k: 1,
            w: 8,
            margin: 16,
            max_anchors_per_seed: 32,
        }
    }
}

/// An anchor: seed position `p` in the laid H word matches concat-M
/// position `j` with σ sum `weight` over the `k` seeded pairs.
#[derive(Clone, Copy, Debug)]
struct Anchor {
    p: u32,
    j: u32,
    weight: Score,
}

/// The winning chain of one fragment orientation: total anchor weight
/// plus the concat-M span `[j_start, j_end)` it claims.
#[derive(Clone, Copy, Debug)]
struct Chain {
    weight: Score,
    j_start: u32,
    j_end: u32,
}

/// One fragment's claim on concat-M after orientation selection.
#[derive(Clone, Copy, Debug)]
struct Claim {
    h_index: usize,
    flip: bool,
    weight: Score,
    core_lo: usize,
    core_hi: usize,
}

/// A selected, margin-padded, disjoint window ready for the DP.
#[derive(Clone, Copy, Debug)]
struct Window {
    h_index: usize,
    flip: bool,
    lo: usize,
    hi: usize,
}

/// SplitMix64 finalizer: the minimizer hash. Any fixed mixing function
/// works — it only has to be deterministic and spread adjacent symbol
/// ids apart.
#[inline]
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Hash of the `k`-symbol seed starting at `p`.
fn seed_hash(word: &[Sym], p: usize, k: usize) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for sym in &word[p..p + k] {
        h = mix64(h ^ (((sym.id as u64) << 1) | sym.rev as u64));
    }
    h
}

/// The `(k, w)` minimizer positions of `word`: seed starts whose hash
/// is minimal in at least one window of `w` consecutive starts. With
/// at most `w` starts every position is kept. Ties keep every
/// attaining position (deterministic either way).
fn minimizer_positions(word: &[Sym], k: usize, w: usize) -> Vec<usize> {
    let starts = word.len() + 1 - k; // caller guarantees len >= k
    if starts <= w {
        return (0..starts).collect();
    }
    let hashes: Vec<u64> = (0..starts).map(|p| seed_hash(word, p, k)).collect();
    let mut keep = vec![false; starts];
    for lo in 0..=(starts - w) {
        let min = *hashes[lo..lo + w].iter().min().expect("w > 0");
        for (off, &h) in hashes[lo..lo + w].iter().enumerate() {
            if h == min {
                keep[lo + off] = true;
            }
        }
    }
    (0..starts).filter(|&p| keep[p]).collect()
}

/// Max-query Fenwick tree over j-ranks for the weighted LIS: each
/// node stores the best `(chain weight, chain start)` among anchors
/// with smaller rank; ties prefer the smaller start (deterministic).
struct FenwickMax {
    tree: Vec<Option<(Score, u32)>>,
}

impl FenwickMax {
    fn new(n: usize) -> Self {
        FenwickMax {
            tree: vec![None; n + 1],
        }
    }

    fn better(a: (Score, u32), b: (Score, u32)) -> bool {
        a.0 > b.0 || (a.0 == b.0 && a.1 < b.1)
    }

    /// Best value among ranks `1..=i`.
    fn prefix_max(&self, mut i: usize) -> Option<(Score, u32)> {
        let mut best: Option<(Score, u32)> = None;
        while i > 0 {
            if let Some(v) = self.tree[i] {
                if best.is_none_or(|b| Self::better(v, b)) {
                    best = Some(v);
                }
            }
            i &= i - 1;
        }
        best
    }

    fn update(&mut self, mut i: usize, v: (Score, u32)) {
        while i < self.tree.len() {
            if self.tree[i].is_none_or(|cur| Self::better(v, cur)) {
                self.tree[i] = Some(v);
            }
            i += i & i.wrapping_neg();
        }
    }
}

/// Maximum-weight chain of anchors with strictly increasing `p` and
/// `j`. Anchors must arrive sorted by `(p, j)`; anchors sharing a seed
/// position never chain with each other.
fn chain_anchors(anchors: &[Anchor], k: usize) -> Option<Chain> {
    if anchors.is_empty() {
        return None;
    }
    // Coordinate-compress j for the Fenwick ranks.
    let mut js: Vec<u32> = anchors.iter().map(|a| a.j).collect();
    js.sort_unstable();
    js.dedup();
    let rank = |j: u32| js.binary_search(&j).expect("j was inserted") + 1;

    let mut fen = FenwickMax::new(js.len());
    let mut best: Option<Chain> = None;
    let mut i = 0;
    while i < anchors.len() {
        // One seed position at a time: query every same-p anchor
        // before any of them updates the tree.
        let p = anchors[i].p;
        let run_end = anchors[i..]
            .iter()
            .position(|a| a.p != p)
            .map_or(anchors.len(), |off| i + off);
        let mut staged: Vec<(usize, (Score, u32))> = Vec::with_capacity(run_end - i);
        for a in &anchors[i..run_end] {
            let r = rank(a.j);
            let (weight, start) = match fen.prefix_max(r - 1) {
                Some((w, s)) => (w + a.weight, s),
                None => (a.weight, a.j),
            };
            staged.push((r, (weight, start)));
            let cand = Chain {
                weight,
                j_start: start,
                j_end: a.j + k as u32,
            };
            let wins = best.is_none_or(|b| {
                cand.weight > b.weight
                    || (cand.weight == b.weight
                        && (cand.j_start, cand.j_end) < (b.j_start, b.j_end))
            });
            if wins {
                best = Some(cand);
            }
        }
        for (r, v) in staged {
            fen.update(r, v);
        }
        i = run_end;
    }
    best
}

/// Map a concat coordinate to `(original M fragment index, offset)`.
fn concat_coord(lens: &[usize], pos: usize) -> (usize, usize) {
    let mut off = 0;
    for (i, &l) in lens.iter().enumerate() {
        if pos < off + l {
            return (i, pos - off);
        }
        off += l;
    }
    panic!("position {pos} beyond concatenation");
}

/// The anchor index over concat-M plus the inverted positive σ
/// entries.
struct AnchorIndex {
    /// Laid symbol → ascending concat positions.
    m_pos: HashMap<Sym, Vec<u32>>,
    /// H region id → sorted positive partners `(m region, relative
    /// orientation)`.
    partners: HashMap<u32, Vec<(u32, Orient)>>,
}

impl AnchorIndex {
    fn build(inst: &Instance, concat_m: &[Sym]) -> Self {
        let mut m_pos: HashMap<Sym, Vec<u32>> = HashMap::new();
        for (j, &sym) in concat_m.iter().enumerate() {
            m_pos.entry(sym).or_default().push(j as u32);
        }
        let mut partners: HashMap<u32, Vec<(u32, Orient)>> = HashMap::new();
        for (a, b, orient, s) in inst.sigma.iter() {
            if s > 0 {
                partners.entry(a).or_default().push((b, orient));
            }
        }
        // σ iterates a hash map; sort so anchor enumeration (and the
        // per-seed cap) never depends on hasher state.
        for v in partners.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        AnchorIndex { m_pos, partners }
    }

    /// Concat positions whose laid symbol scores positively against
    /// the laid H symbol `x`, ascending.
    fn candidates(&self, x: Sym, out: &mut Vec<u32>) {
        out.clear();
        let Some(partners) = self.partners.get(&x.id) else {
            return;
        };
        for &(b, orient) in partners {
            let m_sym = Sym {
                id: b,
                rev: x.rev ^ orient.is_reversed(),
            };
            if let Some(positions) = self.m_pos.get(&m_sym) {
                out.extend_from_slice(positions);
            }
        }
        out.sort_unstable();
        out.dedup();
    }
}

/// Anchors of one laid H word against concat-M, sorted by `(p, j)`.
fn fragment_anchors(
    inst: &Instance,
    index: &AnchorIndex,
    concat_m: &[Sym],
    word: &[Sym],
    params: &ChainParams,
    k: usize,
) -> Vec<Anchor> {
    let mut anchors = Vec::new();
    let mut cand = Vec::new();
    for p in minimizer_positions(word, k, params.w.max(1)) {
        index.candidates(word[p], &mut cand);
        let mut taken = 0usize;
        for &j in &cand {
            if taken >= params.max_anchors_per_seed {
                break;
            }
            let j = j as usize;
            if j + k > concat_m.len() {
                continue;
            }
            let mut weight: Score = 0;
            let mut ok = true;
            for t in 0..k {
                let s = inst.sigma.score(word[p + t], concat_m[j + t]);
                if s <= 0 {
                    ok = false;
                    break;
                }
                weight += s;
            }
            if ok {
                anchors.push(Anchor {
                    p: p as u32,
                    j: j as u32,
                    weight,
                });
                taken += 1;
            }
        }
    }
    anchors.sort_unstable_by_key(|a| (a.p, a.j));
    anchors
}

/// Max-weight disjoint subset of the claims (weighted interval
/// scheduling over the core spans), returned sorted by `core_lo`.
fn select_disjoint(mut claims: Vec<Claim>) -> Vec<Claim> {
    if claims.is_empty() {
        return claims;
    }
    claims.sort_unstable_by_key(|c| (c.core_hi, c.core_lo, c.h_index));
    let n = claims.len();
    // pred[i]: number of claims wholly left of claim i.
    let his: Vec<usize> = claims.iter().map(|c| c.core_hi).collect();
    let pred = |lo: usize| his.partition_point(|&hi| hi <= lo);
    let mut dp: Vec<Score> = vec![0; n + 1];
    let mut take = vec![false; n];
    for i in 0..n {
        let with = claims[i].weight + dp[pred(claims[i].core_lo)];
        if with >= dp[i] {
            dp[i + 1] = with;
            take[i] = true;
        } else {
            dp[i + 1] = dp[i];
        }
    }
    let mut selected = Vec::new();
    let mut i = n;
    while i > 0 {
        if take[i - 1] {
            selected.push(claims[i - 1]);
            i = pred(claims[i - 1].core_lo);
        } else {
            i -= 1;
        }
    }
    selected.sort_unstable_by_key(|c| c.core_lo);
    selected
}

/// Pad the selected (disjoint, sorted) claims by `margin`, splitting
/// each gap between its neighbours so windows stay disjoint.
fn pad_windows(selected: &[Claim], margin: usize, total: usize) -> Vec<Window> {
    let mut out = Vec::with_capacity(selected.len());
    for (i, c) in selected.iter().enumerate() {
        let lo = if i == 0 {
            c.core_lo.saturating_sub(margin)
        } else {
            let gap = c.core_lo - selected[i - 1].core_hi;
            let right = margin.min(gap / 2);
            c.core_lo - margin.min(gap - right)
        };
        let hi = if i + 1 == selected.len() {
            (c.core_hi + margin).min(total)
        } else {
            let gap = selected[i + 1].core_lo - c.core_hi;
            c.core_hi + margin.min(gap / 2)
        };
        out.push(Window {
            h_index: c.h_index,
            flip: c.flip,
            lo,
            hi,
        });
    }
    out
}

/// Solve by anchor chaining with explicit parameters. The oracle
/// supplies the instance and collects DP-fill telemetry; window DPs
/// count one fill each.
pub fn solve_chain_with_params(oracle: &ScoreOracle<'_>, params: &ChainParams) -> MatchSet {
    let inst = oracle.instance();
    let lens: Vec<usize> = inst.m.iter().map(|f| f.len()).collect();
    let total: usize = lens.iter().sum();
    let concat_m: Vec<Sym> = inst
        .m
        .iter()
        .flat_map(|f| f.regions.iter().copied())
        .collect();
    let trace = oracle.trace().clone();
    let index = {
        let mut sp = span!(trace, "anchor_index");
        let index = AnchorIndex::build(inst, &concat_m);
        sp.set_args(total as i64, 0);
        index
    };

    // Per H fragment: chain both laid orientations, keep the better.
    let mut chain_span = span!(trace, "chaining");
    let mut claims: Vec<Claim> = Vec::new();
    for (h_index, frag) in inst.h.iter().enumerate() {
        if frag.is_empty() || total == 0 {
            continue;
        }
        let k = params.k.max(1).min(frag.len());
        let fwd = &frag.regions;
        let rev = reverse_word(fwd);
        let mut best: Option<(Chain, bool)> = None;
        for (word, flip) in [(fwd.as_slice(), false), (rev.as_slice(), true)] {
            let anchors = fragment_anchors(inst, &index, &concat_m, word, params, k);
            if let Some(chain) = chain_anchors(&anchors, k) {
                // Same orientation wins ties, deterministically.
                if best.is_none_or(|(b, _)| chain.weight > b.weight) {
                    best = Some((chain, flip));
                }
            }
        }
        if let Some((chain, flip)) = best {
            claims.push(Claim {
                h_index,
                flip,
                weight: chain.weight,
                core_lo: chain.j_start as usize,
                core_hi: chain.j_end as usize,
            });
        }
    }

    chain_span.set_args(claims.len() as i64, 0);
    drop(chain_span);

    let windows = {
        let mut sp = span!(trace, "window_select");
        let windows = pad_windows(&select_disjoint(claims), params.margin, total);
        sp.set_args(windows.len() as i64, 0);
        windows
    };
    let mut dp_span = span!(trace, "window_dp");
    dp_span.set_args(windows.len() as i64, 0);

    // Materialise: concat-M in order on the M row, each chained
    // fragment DP-aligned inside its window, unmatched M cells and
    // unchained H fragments as padding-only columns — the factor-4
    // materialisation shape, windows instead of 1-CSR intervals.
    let mut asm = PairAssembler::new();
    let mut cursor = 0usize;
    let emit_m = |asm: &mut PairAssembler, pos: usize| {
        let (mf, mi) = concat_coord(&lens, pos);
        asm.push(None, Some((FragId::m(mf), mi, false)));
    };
    for win in &windows {
        while cursor < win.lo {
            emit_m(&mut asm, cursor);
            cursor += 1;
        }
        let h_frag = FragId::h(win.h_index);
        let h_len = inst.frag_len(h_frag);
        let h_word = {
            let w = &inst.fragment(h_frag).regions;
            if win.flip {
                reverse_word(w)
            } else {
                w.clone()
            }
        };
        let m_word = &concat_m[win.lo..win.hi];
        // Pooled workspace: the window grid reuses the oracle's warm
        // scratch instead of allocating a fresh `DpMatrix` per window,
        // and `with_pooled` folds the fill into `stats.dp_fills`.
        let cols = oracle.with_pooled(|ws| ws.align_words(&inst.sigma, &h_word, m_word).1);
        for (uo, vo) in cols {
            let h_cell = uo.map(|o| {
                let idx = if win.flip { h_len - 1 - o } else { o };
                (h_frag, idx, win.flip)
            });
            let m_cell = vo.map(|o| {
                let (mf, mi) = concat_coord(&lens, win.lo + o);
                (FragId::m(mf), mi, false)
            });
            asm.push(h_cell, m_cell);
        }
        cursor = win.hi;
    }
    while cursor < total {
        emit_m(&mut asm, cursor);
        cursor += 1;
    }
    for f in inst.frag_ids(Species::H) {
        if asm.contains(f) {
            continue;
        }
        for i in 0..inst.frag_len(f) {
            asm.push(Some((f, i, false)), None);
        }
    }
    drop(dp_span);
    let _assemble = span!(trace, "assemble");
    let pair = asm.finish();
    debug_assert!(pair.validate(inst).is_ok(), "{:?}", pair.validate(inst));
    pair.derive_matches(inst)
}

/// [`solve_chain`] with a caller-provided oracle (default parameters).
pub fn solve_chain_with_oracle(oracle: &ScoreOracle<'_>) -> MatchSet {
    solve_chain_with_params(oracle, &ChainParams::default())
}

/// Solve `inst` by anchor chaining with the default [`ChainParams`].
pub fn solve_chain(inst: &Instance) -> MatchSet {
    let oracle = ScoreOracle::new(inst);
    solve_chain_with_oracle(&oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::check_consistency;
    use fragalign_model::instance::{paper_example, InstanceBuilder};

    #[test]
    fn paper_example_is_consistent_and_scores() {
        let inst = paper_example();
        let sol = solve_chain(&inst);
        check_consistency(&inst, &sol).unwrap();
        // h1 chains ⟨a…c⟩ over ⟨s t u⟩ for 4 + 5; h2's window overlaps
        // and loses interval scheduling. A heuristic tier: below the
        // optimum 11, far above zero.
        assert_eq!(sol.total_score(), 9);
    }

    #[test]
    fn empty_sigma_yields_empty_matchset() {
        let mut inst = paper_example();
        inst.sigma = fragalign_model::ScoreTable::new();
        let sol = solve_chain(&inst);
        check_consistency(&inst, &sol).unwrap();
        assert!(sol.is_empty());
    }

    #[test]
    fn reversed_fragment_chains_through_flip() {
        // h = ⟨aR, bR⟩ only matches m = ⟨x, y⟩ after laying h
        // reversed: (aR bR)^R = b a with σ(a, y) and σ(b, x).
        let mut b = InstanceBuilder::new();
        b.h_frag("h", &["bR", "aR"]);
        b.m_frag("m", &["a2", "b2"]);
        b.score("a", "a2", 7);
        b.score("b", "b2", 5);
        let inst = b.build();
        let sol = solve_chain(&inst);
        check_consistency(&inst, &sol).unwrap();
        assert_eq!(sol.total_score(), 12);
        assert!(sol.iter().all(|(_, m)| m.orient == Orient::Reversed));
    }

    #[test]
    fn k2_seeds_require_consecutive_runs() {
        // Two isolated positive pairs never form a k=2 seed; a
        // consecutive run does.
        let mut b = InstanceBuilder::new();
        b.h_frag("h1", &["a", "b"]);
        b.h_frag("h2", &["c", "x", "d"]);
        b.m_frag("m", &["p", "q", "r", "s", "t"]);
        b.score("a", "p", 3);
        b.score("b", "q", 3); // run of 2 → anchors at k=2
        b.score("c", "r", 9);
        b.score("d", "t", 9); // isolated → no k=2 anchor
        let inst = b.build();
        let oracle = ScoreOracle::new(&inst);
        let params = ChainParams {
            k: 2,
            ..ChainParams::default()
        };
        let sol = solve_chain_with_params(&oracle, &params);
        check_consistency(&inst, &sol).unwrap();
        // Only h1 is anchored; its window DP recovers both pairs.
        assert_eq!(sol.total_score(), 6);
        // k=1 seeds recover h2 as well.
        assert_eq!(solve_chain(&inst).total_score(), 24);
    }

    #[test]
    fn minimizers_subsample_long_words_deterministically() {
        let word: Vec<Sym> = (0..200).map(Sym::fwd).collect();
        let a = minimizer_positions(&word, 2, 8);
        let b = minimizer_positions(&word, 2, 8);
        assert_eq!(a, b);
        assert!(a.len() < 199, "long words must be subsampled");
        assert!(a.len() >= 199 / 8, "every window keeps a position");
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted positions");
        // Short words keep everything.
        assert_eq!(
            minimizer_positions(&word[..8], 2, 8),
            (0..7).collect::<Vec<_>>()
        );
    }

    #[test]
    fn chaining_picks_max_weight_increasing_subsequence() {
        // Crossing anchors: (0,5)+(1,6) weight 4 vs (0,0) weight 3
        // chained with (1,1) weight 3 → 6 wins.
        let anchors = vec![
            Anchor {
                p: 0,
                j: 0,
                weight: 3,
            },
            Anchor {
                p: 0,
                j: 5,
                weight: 2,
            },
            Anchor {
                p: 1,
                j: 1,
                weight: 3,
            },
            Anchor {
                p: 1,
                j: 6,
                weight: 2,
            },
        ];
        let c = chain_anchors(&anchors, 1).unwrap();
        assert_eq!(c.weight, 6);
        assert_eq!((c.j_start, c.j_end), (0, 2));
        // Same-p anchors never chain together.
        let same_p = vec![
            Anchor {
                p: 0,
                j: 0,
                weight: 3,
            },
            Anchor {
                p: 0,
                j: 1,
                weight: 3,
            },
        ];
        assert_eq!(chain_anchors(&same_p, 1).unwrap().weight, 3);
        assert!(chain_anchors(&[], 1).is_none());
    }

    #[test]
    fn disjoint_selection_maximises_weight() {
        let claim = |h_index, weight, core_lo, core_hi| Claim {
            h_index,
            flip: false,
            weight,
            core_lo,
            core_hi,
        };
        // Middle claim overlaps both sides; sides together outweigh it.
        let picked = select_disjoint(vec![
            claim(0, 4, 0, 4),
            claim(1, 6, 2, 8),
            claim(2, 4, 6, 10),
        ]);
        let names: Vec<usize> = picked.iter().map(|c| c.h_index).collect();
        assert_eq!(names, vec![0, 2]);
        // Alone, the heavy middle claim wins.
        let picked = select_disjoint(vec![claim(0, 4, 0, 4), claim(1, 9, 2, 8)]);
        assert_eq!(picked.len(), 1);
        assert_eq!(picked[0].h_index, 1);
    }

    #[test]
    fn padding_splits_gaps_and_stays_disjoint() {
        let claim = |h_index, core_lo, core_hi| Claim {
            h_index,
            flip: false,
            weight: 1,
            core_lo,
            core_hi,
        };
        let wins = pad_windows(&[claim(0, 10, 14), claim(1, 20, 24)], 16, 100);
        assert_eq!(wins[0].lo, 0, "leading margin clips at zero");
        assert!(wins[0].hi <= wins[1].lo, "windows stay disjoint");
        assert_eq!(wins[1].hi, 40, "trailing margin extends fully");
        // A tight gap is split between the neighbours.
        assert_eq!(wins[0].hi, 17);
        assert_eq!(wins[1].lo, 17);
    }

    #[test]
    fn fills_are_counted_per_window() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let _ = solve_chain_with_oracle(&oracle);
        assert!(oracle.stats.snapshot().dp_fills > 0);
    }
}
