//! Hash-free, memory-shaped `P_score` kernels.
//!
//! The scalar reference kernel ([`crate::dp::fill_rolling`]) performs
//! one `HashMap` probe per DP cell — `σ` is a sparse table keyed by
//! `(region, region, orientation)`, so the inner recurrence spends its
//! time hashing, not maxing. This module removes the table from the
//! hot loop in three steps, each bit-identical to the reference
//! (scores are integers; `max` is associative; nothing reassociates):
//!
//! 1. **Query profile** ([`QueryProfile`]) — per *distinct* row
//!    symbol, a flat row of `σ(sym, v[j])` over the whole column word,
//!    built once and cached in the [`crate::DpWorkspace`] (keyed by a
//!    generation counter so repeated fills against the same `v` — the
//!    oracle's suffix sweep — reuse one build). The inner loop then
//!    reads `s[j]` from a dense slice instead of probing the map.
//!    Two build strategies, chosen by cost: *sparse* walks the σ
//!    entries and scatters them onto default-filled rows
//!    (`O(|σ| + |u| + |v|)` probes), *dense* probes per profile cell
//!    (`O(distinct × |v|)` probes — cheaper when σ is much larger
//!    than the profile).
//! 2. **Split recurrence** ([`fill_profiled`]) — the three-way
//!    `max(diag, up, left)` carries a loop dependency through
//!    `cur[j-1]`, which blocks vectorisation. Split it: a branchless
//!    sweep `t[j] = max(prev[j-1] + s[j-1], prev[j])` (reads only the
//!    previous row — autovectorisable), then a separate prefix-max
//!    scan `cur[j] = max(t[j], cur[j-1])` for the left carry. The
//!    composition computes exactly the textbook recurrence: DP values
//!    are non-negative, so the prefix max seeded at 0 reproduces the
//!    `cur[j-1]` chain value for value.
//! 3. **Cache blocking** — long rows stream `prev`, `cur`, and the
//!    profile row through cache once per row; beyond
//!    [`KERNEL_BLOCK`] columns the sweep processes column blocks
//!    across *all* rows, carrying the block-boundary column in a side
//!    buffer, so each block's working set stays in L1/L2.
//!
//! The reference kernel stays exactly as it was: the differential net
//! in `crates/align/tests/proptest_kernels.rs` pins every path here
//! against it, cell for cell.

use fragalign_model::{Score, ScoreTable, Sym};
use std::collections::HashMap;

/// Column-block width of the blocked sweep. Three `i64` lanes
/// (`prev`, `cur`, one profile row) at this width occupy ~12 KiB —
/// comfortably inside a 32 KiB L1d next to the carry column and loop
/// state. Exposed so the bench and the boundary tests can straddle it.
pub const KERNEL_BLOCK: usize = 512;

/// Profiles larger than this many cells (distinct row symbols ×
/// columns) are not built: a degenerate word whose symbols are all
/// distinct against a very long column word would materialise the
/// whole score matrix. Callers fall back to the scalar kernel.
pub const PROFILE_MAX_CELLS: usize = 1 << 22;

/// Below this many DP cells a *single* fill skips the profile: the
/// build pass costs more than the hash probes it saves. Sweeps that
/// amortise one build over many fills (the oracle's interval tables)
/// profile regardless of size.
pub const PROFILE_MIN_CELLS: usize = 256;

/// A cached query profile: for each distinct row symbol, the dense
/// row `σ(sym, v[0]), …, σ(sym, v[|v|-1])`.
///
/// Owned by a [`crate::DpWorkspace`]; `build` bumps the generation
/// counter and every fill asserts it was handed the generation it
/// expects, so a stale profile (built for a previous `v`) cannot be
/// read silently.
#[derive(Debug, Default)]
pub struct QueryProfile {
    /// Distinct row symbols, in first-appearance order.
    syms: Vec<Sym>,
    /// `syms.len()` rows × `cols`, flattened row-major.
    rows: Vec<Score>,
    /// Columns per row = |v| of the build.
    cols: usize,
    /// Bumped on every successful build.
    generation: u64,
    /// `(id, rev)` → row index; retained after the build so
    /// [`QueryProfile::map_rows`] resolves row symbols without a scan.
    index: HashMap<(u32, bool), u32>,
}

impl QueryProfile {
    /// Build the profile for row word `u` against column word `v`.
    ///
    /// `swap_roles = false` scores a cell as `σ(row, col)` (row word
    /// on the H side); `swap_roles = true` as `σ(col, row)` (row word
    /// on the M side — the oracle's M-plug tables). Returns the new
    /// generation, or `None` when the profile would exceed
    /// [`PROFILE_MAX_CELLS`] (nothing is cached; callers must fall
    /// back to the scalar kernel).
    pub fn build(
        &mut self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
        swap_roles: bool,
    ) -> Option<u64> {
        self.index.clear();
        self.syms.clear();
        for &s in u {
            let next = self.syms.len() as u32;
            if let std::collections::hash_map::Entry::Vacant(e) = self.index.entry((s.id, s.rev)) {
                e.insert(next);
                self.syms.push(s);
            }
        }
        let distinct = self.syms.len();
        let cells = distinct.checked_mul(v.len())?;
        if cells > PROFILE_MAX_CELLS {
            // Leave the profile unusable rather than half-built.
            self.syms.clear();
            self.index.clear();
            self.cols = 0;
            return None;
        }
        self.cols = v.len();
        if self.rows.len() < cells {
            self.rows.resize(cells, 0);
        }
        self.rows[..cells].fill(sigma.default_score);

        // Strategy by probe count: scattering σ entries touches each
        // entry once plus one map probe per `v` symbol; dense probing
        // touches every profile cell. Pick whichever probes less.
        if sigma.len() + v.len() < cells {
            self.build_sparse(sigma, v, swap_roles);
        } else {
            self.build_dense(sigma, v, swap_roles);
        }
        self.generation += 1;
        Some(self.generation)
    }

    /// Scatter explicit σ entries onto the default-filled rows.
    fn build_sparse(&mut self, sigma: &ScoreTable, v: &[Sym], swap_roles: bool) {
        // Positions of each (id, rev) occurrence in v.
        let mut positions: HashMap<(u32, bool), Vec<u32>> = HashMap::new();
        for (j, s) in v.iter().enumerate() {
            positions.entry((s.id, s.rev)).or_default().push(j as u32);
        }
        let cols = self.cols;
        for (a, b, orient, s) in sigma.iter() {
            // Entry (a, b, o) scores a cell iff the H-side id is `a`,
            // the M-side id is `b`, and the relative orientation of
            // the two occurrences is `o`. Row symbols may occur in
            // both orientations; each fixes the column orientation.
            let (row_id, col_id) = if swap_roles { (b, a) } else { (a, b) };
            for row_rev in [false, true] {
                let Some(&r) = self.index.get(&(row_id, row_rev)) else {
                    continue;
                };
                let col_rev = row_rev ^ orient.is_reversed();
                let Some(js) = positions.get(&(col_id, col_rev)) else {
                    continue;
                };
                let row = &mut self.rows[r as usize * cols..(r as usize + 1) * cols];
                for &j in js {
                    row[j as usize] = s;
                }
            }
        }
    }

    /// Probe σ once per profile cell.
    fn build_dense(&mut self, sigma: &ScoreTable, v: &[Sym], swap_roles: bool) {
        let cols = self.cols;
        for (r, &sym) in self.syms.iter().enumerate() {
            let row = &mut self.rows[r * cols..(r + 1) * cols];
            for (j, &sv) in v.iter().enumerate() {
                row[j] = if swap_roles {
                    sigma.score(sv, sym)
                } else {
                    sigma.score(sym, sv)
                };
            }
        }
    }

    /// Resolve each symbol of `u` to its profile row index. Every
    /// symbol must have appeared in the `u` the profile was built for
    /// (the oracle sweeps reuse one build across suffixes of the same
    /// row word, never across row words).
    pub fn map_rows(&self, u: &[Sym], out: &mut Vec<u32>) {
        out.clear();
        out.extend(u.iter().map(|s| self.index[&(s.id, s.rev)]));
    }

    /// The generation of the last successful build.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Columns per profile row (the |v| of the last build).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The dense score row for profile row `r`.
    #[inline]
    pub(crate) fn row(&self, r: u32) -> &[Score] {
        &self.rows[r as usize * self.cols..(r as usize + 1) * self.cols]
    }

    /// `σ(u_row, v[j])` for profile row `r` — the wavefront's per-cell
    /// lookup.
    #[inline]
    pub(crate) fn cell(&self, r: u32, j: usize) -> Score {
        self.rows[r as usize * self.cols + j]
    }
}

/// The profiled split-recurrence sweep over caller-provided buffers:
/// bit-identical to [`crate::dp::fill_rolling`] with the score
/// function the profile was built from.
///
/// `row_of[i]` names the profile row of DP row `i + 1`; columns come
/// from the profile slice `[offset, offset + len)` (the oracle's
/// suffix sweep passes `offset = d` against one whole-word build).
/// `block` is the column-block width: pass [`KERNEL_BLOCK`] for the
/// cache-blocked sweep or `usize::MAX` to force a single unblocked
/// pass (the bench measures both). On return `prev[..=len]` holds the
/// final DP row, exactly as the scalar kernel leaves it.
///
/// Buffers may arrive dirty from larger fills; everything read is
/// rewritten first (`prev` is zeroed to the fill width, `carry` to
/// the row count) so stale tails from earlier, wider fills cannot
/// leak in — pinned by the shrink regression in `proptest_kernels`.
#[allow(clippy::too_many_arguments)]
pub fn fill_profiled(
    profile: &QueryProfile,
    generation: u64,
    row_of: &[u32],
    offset: usize,
    len: usize,
    block: usize,
    prev: &mut Vec<Score>,
    cur: &mut Vec<Score>,
    carry: &mut Vec<Score>,
) -> Score {
    debug_assert_eq!(
        generation, profile.generation,
        "stale query profile: built for a different column word"
    );
    debug_assert!(offset + len <= profile.cols || len == 0);
    let cols = len + 1;
    let rows = row_of.len();
    if prev.len() < cols {
        prev.resize(cols, 0);
    }
    if cur.len() < cols {
        cur.resize(cols, 0);
    }
    prev[..cols].fill(0);
    if rows == 0 || len == 0 {
        return prev[cols - 1];
    }
    if len <= block {
        // Unblocked: one split sweep per row.
        for &r in row_of {
            let s = &profile.row(r)[offset..offset + len];
            sweep_block(s, 0, &prev[..cols], &mut cur[..cols]);
            std::mem::swap(prev, cur);
        }
        return prev[len];
    }

    // Blocked: column blocks across *all* rows, the block-boundary
    // column carried per row. `carry[i]` holds `M[i][done]`, the DP
    // value of row `i` at the last finished column. The block-local
    // rolling rows live in the two halves of `cur` so `prev` can
    // accumulate the final DP row at full width as blocks retire —
    // the contract (`prev` = last row) costs nothing extra.
    let bcap = block + 1;
    if cur.len() < 2 * bcap {
        cur.resize(2 * bcap, 0);
    }
    if carry.len() < rows + 1 {
        carry.resize(rows + 1, 0);
    }
    carry[..=rows].fill(0);
    prev[..cols].fill(0);
    let mut done = 0;
    while done < len {
        let bw = block.min(len - done);
        let (ra, rb) = cur.split_at_mut(bcap);
        // Rolling rows over columns `done+1 ..= done+bw`.
        let mut pd: &mut [Score] = &mut ra[..bw];
        let mut pu: &mut [Score] = &mut rb[..bw];
        pd.fill(0); // DP row 0 is the zero base row
                    // `above` = `M[i-1][done]`, the diagonal source of the block's
                    // first cell — stashed because `carry[i-1]` was already
                    // advanced to this block's right edge by the previous row.
        let mut above = 0;
        for (i, &r) in row_of.iter().enumerate() {
            let left = carry[i + 1];
            let s = &profile.row(r)[offset + done..offset + done + bw];
            // Pass 1; the first cell reads the boundary diagonal.
            let t0 = above + s[0];
            pu[0] = if t0 > pd[0] { t0 } else { pd[0] };
            for j in 1..bw {
                let t = pd[j - 1] + s[j];
                pu[j] = if t > pd[j] { t } else { pd[j] };
            }
            // Pass 2: prefix max seeded with the row's left boundary.
            let mut run = left;
            for c in pu.iter_mut() {
                if *c > run {
                    run = *c;
                } else {
                    *c = run;
                }
            }
            above = left;
            carry[i + 1] = pu[bw - 1];
            if i + 1 == rows {
                prev[done + 1..done + 1 + bw].copy_from_slice(pu);
            }
            std::mem::swap(&mut pd, &mut pu);
        }
        done += bw;
    }
    let score = carry[rows];
    debug_assert_eq!(prev[len], score);
    score
}

/// One row of the split recurrence over a column window:
/// pass 1 `t[j] = max(prev[j-1] + s[j-1], prev[j])` (branchless,
/// reads only the previous row — the autovectorisable half), pass 2
/// the sequential prefix-max carry. `left` seeds the carry (0 for an
/// unblocked row, the previous block's boundary value otherwise).
#[inline]
fn sweep_block(s: &[Score], left: Score, prev: &[Score], cur: &mut [Score]) {
    let len = s.len();
    debug_assert!(prev.len() == len + 1 && cur.len() == len + 1);
    // Pass 1 into cur[1..]: no dependency on cur, so the compiler can
    // pack lanes (i64 max lowers to compare+select).
    let up = &prev[1..len + 1];
    let diag = &prev[..len];
    let out = &mut cur[1..len + 1];
    for j in 0..len {
        let t = diag[j] + s[j];
        out[j] = if t > up[j] { t } else { up[j] };
    }
    // Pass 2: the left carry.
    cur[0] = 0;
    let mut run = left.max(0);
    for c in cur[1..len + 1].iter_mut() {
        if *c > run {
            run = *c;
        } else {
            *c = run;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::fill_rolling;

    fn table(seed: u64, syms: u32, default: Score) -> ScoreTable {
        let mut t = ScoreTable::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for a in 0..syms {
            for b in 0..syms {
                let r = next() % 9;
                if r > 3 {
                    let m = if r % 2 == 0 {
                        Sym::rev(1000 + b)
                    } else {
                        Sym::fwd(1000 + b)
                    };
                    t.set(Sym::fwd(a), m, (r as i64) - 5);
                }
            }
        }
        t.default_score = default;
        t
    }

    fn word(seed: u64, len: usize, syms: u32, base: u32) -> Vec<Sym> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Sym {
                    id: base + (state % syms as u64) as u32,
                    rev: state.is_multiple_of(3),
                }
            })
            .collect()
    }

    fn profiled(
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
        swap: bool,
        offset: usize,
        len: usize,
        block: usize,
    ) -> (Score, Vec<Score>) {
        let mut p = QueryProfile::default();
        let generation = p.build(sigma, u, v, swap).expect("profile fits");
        let mut row_of = Vec::new();
        p.map_rows(u, &mut row_of);
        let (mut prev, mut cur, mut carry) = (Vec::new(), Vec::new(), Vec::new());
        let s = fill_profiled(
            &p, generation, &row_of, offset, len, block, &mut prev, &mut cur, &mut carry,
        );
        (s, prev[..=len].to_vec())
    }

    fn scalar(sigma: &ScoreTable, u: &[Sym], v: &[Sym], swap: bool) -> (Score, Vec<Score>) {
        let (mut prev, mut cur) = (Vec::new(), Vec::new());
        let s = if swap {
            fill_rolling(|a, b| sigma.score(b, a), u, v, &mut prev, &mut cur)
        } else {
            fill_rolling(|a, b| sigma.score(a, b), u, v, &mut prev, &mut cur)
        };
        (s, prev[..=v.len()].to_vec())
    }

    #[test]
    fn profiled_matches_scalar_across_shapes_and_blocks() {
        for (seed, lu, lv, syms, default) in [
            (1, 0, 7, 4, 0),
            (2, 7, 0, 4, 0),
            (3, 5, 9, 3, -1),
            (4, 40, 600, 8, 0),
            (5, 9, KERNEL_BLOCK - 1, 6, -2),
            (6, 9, KERNEL_BLOCK, 6, 0),
            (7, 9, KERNEL_BLOCK + 1, 6, 0),
            (8, 17, 2 * KERNEL_BLOCK + 5, 12, -1),
        ] {
            let sigma = table(seed, syms, default);
            let u = word(seed + 10, lu, syms, 0);
            let v = word(seed + 20, lv, syms, 1000);
            for swap in [false, true] {
                let (want, want_row) = scalar(&sigma, &u, &v, swap);
                for block in [usize::MAX, KERNEL_BLOCK, 64, 1] {
                    let (got, got_row) = profiled(&sigma, &u, &v, swap, 0, v.len(), block);
                    assert_eq!(got, want, "seed {seed} swap {swap} block {block}");
                    assert_eq!(got_row, want_row, "final row, seed {seed} block {block}");
                }
            }
        }
    }

    #[test]
    fn offset_fills_match_suffix_scalar() {
        let sigma = table(11, 6, -1);
        let u = word(12, 9, 6, 0);
        let v = word(13, 40, 6, 1000);
        let mut p = QueryProfile::default();
        let generation = p.build(&sigma, &u, &v, false).unwrap();
        let mut row_of = Vec::new();
        p.map_rows(&u, &mut row_of);
        let (mut prev, mut cur, mut carry) = (Vec::new(), Vec::new(), Vec::new());
        for d in 0..=v.len() {
            let got = fill_profiled(
                &p,
                generation,
                &row_of,
                d,
                v.len() - d,
                KERNEL_BLOCK,
                &mut prev,
                &mut cur,
                &mut carry,
            );
            let (want, want_row) = scalar(&sigma, &u, &v[d..], false);
            assert_eq!(got, want, "suffix {d}");
            assert_eq!(&prev[..=v.len() - d], &want_row[..], "suffix row {d}");
        }
    }

    #[test]
    fn oversized_profile_is_refused() {
        let sigma = table(1, 4, 0);
        // All-distinct row word × long column word exceeds the cap.
        let u: Vec<Sym> = (0..3000).map(Sym::fwd).collect();
        let v = word(2, 2000, 4, 1000);
        let mut p = QueryProfile::default();
        assert!(p.build(&sigma, &u, &v, false).is_none());
    }

    #[test]
    fn sparse_and_dense_builds_agree() {
        // Force both strategies on the same inputs by building against
        // tables on either side of the cost crossover and comparing to
        // the scalar closure cell by cell.
        let sigma = table(21, 5, -2);
        let u = word(22, 11, 5, 0);
        let v = word(23, 13, 5, 1000);
        let mut p = QueryProfile::default();
        p.build(&sigma, &u, &v, false).unwrap();
        let mut row_of = Vec::new();
        p.map_rows(&u, &mut row_of);
        for (i, &r) in row_of.iter().enumerate() {
            for (j, &sv) in v.iter().enumerate() {
                assert_eq!(p.row(r)[j], sigma.score(u[i], sv), "cell ({i}, {j})");
            }
        }
        // Swapped roles too.
        p.build(&sigma, &v, &u, true).unwrap();
        let mut row_of_v = Vec::new();
        p.map_rows(&v, &mut row_of_v);
        for (i, &r) in row_of_v.iter().enumerate() {
            for (j, &su) in u.iter().enumerate() {
                assert_eq!(p.row(r)[j], sigma.score(su, v[i]), "swapped ({i}, {j})");
            }
        }
    }
}
