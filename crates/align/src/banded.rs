//! Banded `P_score`.
//!
//! When two region lists are near-collinear (the common case for true
//! homologous sites — large rearrangements were already split into
//! separate fragments upstream), the optimal alignment path stays close
//! to the main diagonal and a band of half-width `k` suffices:
//! `O(k·(n+m))` instead of `O(n·m)`.
//!
//! The banded score is a *lower bound* of the full `P_score` (it
//! explores a subset of paths) and equals it whenever the optimum path
//! stays inside the band — both properties are property-tested.

use fragalign_model::{Score, ScoreTable, Sym};

/// The minimal half-width at which [`p_score_banded`] provably equals
/// the full DP for *every* score table: the row-`i` window is
/// `[center(i) − band, center(i) + band]` around the rescaled diagonal
/// `center(i) = ⌊i·m/n⌋`, and `center(0) = 0`, so covering every
/// column of every row (hence every DP cell) requires and suffices at
/// `band = m = |v|`. With the window clamped to `[0, m]` the lossless
/// fill visits exactly the same `(n+1)·(m+1)` cells as the full DP —
/// losslessness costs nothing.
pub fn lossless_band(_u_len: usize, v_len: usize) -> usize {
    v_len
}

/// Out-of-band sentinel: small enough that `max` never picks it, large
/// enough that adding a score cannot wrap.
const NEG: Score = Score::MIN / 4;

/// The banded recurrence over caller-provided window buffers. Row `i`'s
/// window covers columns `max(0, c(i)−band) ..= min(m, c(i)+band)`
/// where `c(i) = ⌊i·m/n⌋`; cells outside a row's window read as
/// [`NEG`]. Every in-band cell is additionally floored at 0 (a
/// ⊥-only prefix reaches any cell for free in the full DP), so the
/// result is a lower bound of `P_score` for any band and equals it
/// from [`lossless_band`] upward.
pub(crate) fn fill_banded(
    sigma: &ScoreTable,
    u: &[Sym],
    v: &[Sym],
    band: usize,
    prev: &mut Vec<Score>,
    cur: &mut Vec<Score>,
) -> Score {
    let n = u.len();
    let m = v.len();
    debug_assert!(n > 0 && m > 0, "caller handles empty words");
    let center = |i: usize| -> usize { i * m / n };
    let window = |i: usize| -> (usize, usize) {
        let c = center(i);
        (c.saturating_sub(band), (c + band).min(m))
    };
    // A window never exceeds min(2·band+1, m+1) cells.
    let width = (2 * band + 1).min(m + 1);
    if prev.len() < width {
        prev.resize(width, 0);
    }
    if cur.len() < width {
        cur.resize(width, 0);
    }
    // Row 0: base cells are 0 inside the window.
    let (mut plo, mut phi) = window(0);
    prev[..=(phi - plo)].fill(0);
    for i in 1..=n {
        let (lo, hi) = window(i);
        let ui = u[i - 1];
        for j in lo..=hi {
            if j == 0 {
                cur[0] = 0; // base column
                continue;
            }
            let read_prev = |jj: usize| -> Score {
                if (plo..=phi).contains(&jj) {
                    prev[jj - plo]
                } else {
                    NEG
                }
            };
            let diag = read_prev(j - 1).saturating_add(sigma.score(ui, v[j - 1]));
            let up = read_prev(j);
            let left = if j > lo { cur[j - 1 - lo] } else { NEG };
            cur[j - lo] = diag.max(up).max(left).max(0);
        }
        std::mem::swap(prev, cur);
        (plo, phi) = (lo, hi);
    }
    // center(n) = m, so the final cell (n, m) is always in band.
    debug_assert!(phi == m && plo <= m);
    prev[m - plo]
}

/// Banded `P_score` with half-width `band` around the rescaled
/// diagonal: a lower bound of [`crate::p_score`] for every band, and
/// exactly equal from [`lossless_band`] upward (in particular,
/// `band ≥ |v|` is always exact). Row windows are clamped to the
/// matrix, so the fill never costs more than the full DP. Allocates
/// its two window rows per call; [`crate::DpWorkspace::p_score_banded`]
/// is the reusing variant.
pub fn p_score_banded(sigma: &ScoreTable, u: &[Sym], v: &[Sym], band: usize) -> Score {
    if u.is_empty() || v.is_empty() {
        return 0;
    }
    let width = (2 * band + 1).min(v.len() + 1);
    let mut prev = Vec::with_capacity(width);
    let mut cur = Vec::with_capacity(width);
    fill_banded(sigma, u, v, band, &mut prev, &mut cur)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::p_score;
    use fragalign_model::ScoreTable;

    fn diag_table(n: u32) -> ScoreTable {
        let mut t = ScoreTable::new();
        for i in 0..n {
            t.set(Sym::fwd(i), Sym::fwd(1000 + i), 5);
        }
        t
    }

    #[test]
    fn wide_band_is_exact() {
        let t = diag_table(16);
        let u: Vec<Sym> = (0..12).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..12).map(|i| Sym::fwd(1000 + i)).collect();
        assert_eq!(p_score_banded(&t, &u, &v, 12), p_score(&t, &u, &v));
    }

    #[test]
    fn collinear_paths_found_with_small_band() {
        let t = diag_table(16);
        let u: Vec<Sym> = (0..10).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..10).map(|i| Sym::fwd(1000 + i)).collect();
        assert_eq!(p_score_banded(&t, &u, &v, 1), 50);
    }

    #[test]
    fn band_is_lower_bound() {
        // An off-diagonal optimum: u's tail matches v's head.
        let mut t = ScoreTable::new();
        for i in 0..4u32 {
            t.set(Sym::fwd(i), Sym::fwd(1000 + i), 7);
        }
        let mut u: Vec<Sym> = (10..18).map(Sym::fwd).collect(); // junk prefix
        u.extend((0..4).map(Sym::fwd));
        let mut v: Vec<Sym> = (0..4).map(|i| Sym::fwd(1000 + i)).collect();
        v.extend((20..28).map(|i| Sym::fwd(1000 + i))); // junk suffix
        let full = p_score(&t, &u, &v);
        assert_eq!(full, 28);
        for band in 0..=12 {
            let banded = p_score_banded(&t, &u, &v, band);
            assert!(banded <= full, "band {band}: {banded} > {full}");
        }
        // A generous band recovers the optimum.
        assert_eq!(p_score_banded(&t, &u, &v, 12), full);
    }

    #[test]
    fn empty_inputs() {
        let t = diag_table(2);
        assert_eq!(p_score_banded(&t, &[], &[], 3), 0);
        assert_eq!(p_score_banded(&t, &[Sym::fwd(0)], &[], 3), 0);
    }

    #[test]
    fn asymmetric_lengths() {
        let t = diag_table(8);
        let u: Vec<Sym> = (0..4).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..8).map(|i| Sym::fwd(1000 + (i % 8))).collect();
        let full = p_score(&t, &u, &v);
        assert_eq!(p_score_banded(&t, &u, &v, 8), full);
        assert!(p_score_banded(&t, &u, &v, 2) <= full);
    }
}
