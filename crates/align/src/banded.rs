//! Banded `P_score`.
//!
//! When two region lists are near-collinear (the common case for true
//! homologous sites — large rearrangements were already split into
//! separate fragments upstream), the optimal alignment path stays close
//! to the main diagonal and a band of half-width `k` suffices:
//! `O(k·(n+m))` instead of `O(n·m)`.
//!
//! The banded score is a *lower bound* of the full `P_score` (it
//! explores a subset of paths) and equals it whenever the optimum path
//! stays inside the band — both properties are property-tested.

use fragalign_model::{Score, ScoreTable, Sym};

/// Banded `P_score` with half-width `band` around the rescaled
/// diagonal. `band >= max(|u|, |v|)` degenerates to the exact DP.
pub fn p_score_banded(sigma: &ScoreTable, u: &[Sym], v: &[Sym], band: usize) -> Score {
    let n = u.len();
    let m = v.len();
    if n == 0 || m == 0 {
        return 0;
    }
    // Center of row i: the rescaled diagonal j ≈ i·m/n.
    let center = |i: usize| -> i64 { ((i as i64) * (m as i64)) / (n as i64).max(1) };
    let b = band as i64;
    let width = (2 * b + 1) as usize;
    // window[i] covers columns center(i)-b ..= center(i)+b clamped to
    // [0, m]; store flat rows of `width` cells plus a sentinel value
    // for out-of-band reads.
    const NEG: Score = Score::MIN / 4;
    let mut prev = vec![NEG; width + 2];
    let mut cur = vec![NEG; width + 2];
    // Row 0: M[0][j] = 0 inside the window.
    {
        let c0 = center(0);
        for (w, cell) in prev.iter_mut().enumerate().take(width) {
            let j = c0 - b + w as i64;
            if (0..=m as i64).contains(&j) {
                *cell = 0;
            }
        }
    }
    for i in 1..=n {
        let ci = center(i);
        let cp = center(i - 1);
        for cell in cur.iter_mut() {
            *cell = NEG;
        }
        for w in 0..width {
            let j = ci - b + w as i64;
            if !(0..=m as i64).contains(&j) {
                continue;
            }
            // Base column: M[i][0] = 0.
            if j == 0 {
                cur[w] = 0;
                continue;
            }
            let read_prev = |jj: i64| -> Score {
                let idx = jj - (cp - b);
                if (0..width as i64).contains(&idx) {
                    prev[idx as usize]
                } else {
                    NEG
                }
            };
            let diag = read_prev(j - 1).saturating_add(sigma.score(u[i - 1], v[j as usize - 1]));
            let up = read_prev(j);
            let left = if w > 0 { cur[w - 1] } else { NEG };
            let best = diag.max(up).max(left);
            // Clamp to ≥ 0 only where a fresh start is legitimate: the
            // full DP has M ≥ 0 everywhere because ⊥-only prefixes are
            // free, and any cell can be reached by skipping.
            cur[w] = best.max(0);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    let last_idx = (m as i64) - (center(n) - b);
    if (0..width as i64).contains(&last_idx) {
        prev[last_idx as usize].max(0)
    } else {
        // The final cell fell outside the band; the best in-band value
        // of the last row is still a valid lower bound (trailing
        // symbols pair with ⊥).
        prev.iter().copied().max().unwrap_or(0).max(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::p_score;
    use fragalign_model::ScoreTable;

    fn diag_table(n: u32) -> ScoreTable {
        let mut t = ScoreTable::new();
        for i in 0..n {
            t.set(Sym::fwd(i), Sym::fwd(1000 + i), 5);
        }
        t
    }

    #[test]
    fn wide_band_is_exact() {
        let t = diag_table(16);
        let u: Vec<Sym> = (0..12).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..12).map(|i| Sym::fwd(1000 + i)).collect();
        assert_eq!(p_score_banded(&t, &u, &v, 12), p_score(&t, &u, &v));
    }

    #[test]
    fn collinear_paths_found_with_small_band() {
        let t = diag_table(16);
        let u: Vec<Sym> = (0..10).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..10).map(|i| Sym::fwd(1000 + i)).collect();
        assert_eq!(p_score_banded(&t, &u, &v, 1), 50);
    }

    #[test]
    fn band_is_lower_bound() {
        // An off-diagonal optimum: u's tail matches v's head.
        let mut t = ScoreTable::new();
        for i in 0..4u32 {
            t.set(Sym::fwd(i), Sym::fwd(1000 + i), 7);
        }
        let mut u: Vec<Sym> = (10..18).map(Sym::fwd).collect(); // junk prefix
        u.extend((0..4).map(Sym::fwd));
        let mut v: Vec<Sym> = (0..4).map(|i| Sym::fwd(1000 + i)).collect();
        v.extend((20..28).map(|i| Sym::fwd(1000 + i))); // junk suffix
        let full = p_score(&t, &u, &v);
        assert_eq!(full, 28);
        for band in 0..=12 {
            let banded = p_score_banded(&t, &u, &v, band);
            assert!(banded <= full, "band {band}: {banded} > {full}");
        }
        // A generous band recovers the optimum.
        assert_eq!(p_score_banded(&t, &u, &v, 12), full);
    }

    #[test]
    fn empty_inputs() {
        let t = diag_table(2);
        assert_eq!(p_score_banded(&t, &[], &[], 3), 0);
        assert_eq!(p_score_banded(&t, &[Sym::fwd(0)], &[], 3), 0);
    }

    #[test]
    fn asymmetric_lengths() {
        let t = diag_table(8);
        let u: Vec<Sym> = (0..4).map(Sym::fwd).collect();
        let v: Vec<Sym> = (0..8).map(|i| Sym::fwd(1000 + (i % 8))).collect();
        let full = p_score(&t, &u, &v);
        assert_eq!(p_score_banded(&t, &u, &v, 8), full);
        assert!(p_score_banded(&t, &u, &v, 2) <= full);
    }
}
