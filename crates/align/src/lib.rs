//! # fragalign-align
//!
//! Alignment substrate for the CSR problem.
//!
//! The paper's Definition 4 builds match scores `MS(h̄, m̄)` from
//! `P_score(h̄, m̄)`: the maximum column score over all paddings of the
//! two sites — the classic problem of aligning two lists of symbols
//! where gaps are free and every column of two symbols scores `σ`.
//! This crate provides:
//!
//! * the sequential dynamic program with traceback ([`dp`]),
//! * hash-free query-profile kernels — a branchless split recurrence
//!   with cache blocking, bit-identical to the scalar DP ([`kernel`]),
//! * match scores with orientation search ([`match_score`]),
//! * an all-intervals oracle `MS(h, m(d, e))` with memoisation for the
//!   1-CSR → ISP reduction and for TPA profits ([`oracle`]),
//! * an anti-diagonal wavefront-parallel DP (rayon) for long region
//!   lists ([`wavefront`]),
//! * a fragment-chaining tier — minimizer anchors, LIS chaining, DP
//!   only inside the chained windows — for instances too large for
//!   the full DP family ([`chain`]),
//! * a from-scratch nucleotide Smith–Waterman aligner with reverse
//!   complement search, used by the simulator to derive region scores
//!   the way a sequencing pipeline would ([`dna`]).

pub mod banded;
pub mod chain;
pub mod dna;
pub mod dp;
pub mod kernel;
pub mod match_score;
pub mod oracle;
pub mod wavefront;
pub mod workspace;

pub use banded::{lossless_band, p_score_banded};
pub use chain::{solve_chain, solve_chain_with_oracle, solve_chain_with_params, ChainParams};
pub use dp::{align_words, p_score, DpAligner, DpMatrix};
pub use kernel::{QueryProfile, KERNEL_BLOCK, PROFILE_MAX_CELLS, PROFILE_MIN_CELLS};
pub use match_score::{ms_sites, ms_words, site_laid_word};
pub use oracle::{OracleStats, OracleStatsSnapshot, ScoreOracle};
pub use wavefront::{p_score_wavefront, p_score_wavefront_with};
pub use workspace::{DpWorkspace, KernelMode};
