//! Reusable DP workspaces.
//!
//! Every `P_score` fill needs two rolling rows (plus a reversed-word
//! scratch for the orientation search, and a whole-table scratch for
//! the oracle's reversed-interval re-indexing). Allocating those per
//! call dominates the score oracle on the short region words the
//! simulator produces, so a [`DpWorkspace`] owns the buffers and every
//! kernel in this crate has an entry point that fills into it instead
//! of allocating. The allocating free functions ([`crate::p_score`],
//! [`crate::ms_words`], …) remain as thin per-call wrappers.
//!
//! Workspaces are deliberately `!Sync`: one per worker. The oracle
//! keeps a pool of them and checks one out per cache miss, so shared
//! oracles stay `Sync` without serialising fills.

use crate::banded::fill_banded;
use crate::dp::{fill_rolling, traceback_from};
use crate::kernel::{fill_profiled, QueryProfile, KERNEL_BLOCK, PROFILE_MIN_CELLS};
use fragalign_model::consistency::AlignColumns;
use fragalign_model::symbol::reverse_word_in_place;
use fragalign_model::{Orient, Score, ScoreTable, Sym};

/// Which `P_score` kernel a fill runs through. Production entry points
/// pick automatically ([`DpWorkspace::p_score`] profiles any fill
/// large enough to amortise the build); this enum exists so the
/// `exp_kernel` bench and the differential tests can force each path
/// over identical inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelMode {
    /// The hash-probing rolling-row reference kernel.
    Scalar,
    /// Query profile + split recurrence, single unblocked sweep.
    Profiled,
    /// Query profile + split recurrence + column blocking at
    /// [`KERNEL_BLOCK`].
    ProfiledBlocked,
}

/// Geometry of the positive-σ cells of one DP matrix, measured in one
/// `O(|σ| · (|u| + |v|))` scan (σ is sparse; the DP is `O(|u| · |v|)`
/// hash lookups). Drives the oracle's two shortcuts:
///
/// * **early exit** — no positive cell means `P_score = 0` for both
///   orientations: non-positive columns are never chosen, so the empty
///   padding is optimal and no DP needs to run at all;
/// * **provably lossless band** — every positive cell lies within
///   `dev` of the rescaled diagonal, so a band of half-width
///   `dev + ⌈m/n⌉ + 1` contains every positive cell, each cell's
///   diagonal predecessor, and a monotone corridor connecting them to
///   the base row and the final cell (consecutive row windows shift by
///   at most `⌈m/n⌉` columns). The banded fill then equals the full
///   DP, and the oracle selects it whenever the window is narrower
///   than the full row.
#[derive(Clone, Copy, Debug)]
struct PositiveCells {
    /// Whether any cell of the matrix can score positively.
    any: bool,
    /// Max deviation `|j − ⌊i·m/n⌋|` over positive cells, `v` forward.
    dev_same: usize,
    /// Same, with `v` reversed (column `j` ↦ `m − 1 − j`).
    dev_rev: usize,
}

/// Scan the positive-σ cells of `u` × `v`. Conservative superset: the
/// orientation flags of the occurrences are ignored (a cell whose ids
/// match a positive entry counts even if its relative orientation
/// would miss), which can only widen the band, never lose a cell.
/// Callers must ensure `sigma.default_score <= 0` (otherwise *every*
/// cell can be positive) and `u`, `v` non-empty.
///
/// Cost: `O(|σ| · |u|)` plus one `|v|` sweep per row occurrence plus
/// the positive cells actually enumerated. Once both deviations
/// already rule out every band (`dev > m/2` means the selected band
/// could not beat the full row), the scan aborts — so repetitive
/// words whose positive cells span the whole matrix cannot degenerate
/// into an `O(|σ| · |u| · |v|)` pre-pass in front of the DP they fail
/// to avoid.
fn scan_positive_cells(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> PositiveCells {
    let n = u.len();
    let m = v.len();
    let mut out = PositiveCells {
        any: false,
        dev_same: 0,
        dev_rev: 0,
    };
    // Beyond this deviation, `fill_exact` picks the rolling kernel for
    // both orientations anyway: band = dev + ⌈m/n⌉ + 1 > m/2.
    let hopeless = |c: &PositiveCells| c.any && c.dev_same * 2 > m && c.dev_rev * 2 > m;
    for (a, b, _orient, s) in sigma.iter() {
        if s <= 0 {
            continue;
        }
        for (i, su) in u.iter().enumerate() {
            if su.id != a {
                continue;
            }
            let center = (i + 1) * m / n;
            for (j, sv) in v.iter().enumerate() {
                if sv.id != b {
                    continue;
                }
                out.any = true;
                out.dev_same = out.dev_same.max((j + 1).abs_diff(center));
                out.dev_rev = out.dev_rev.max((m - j).abs_diff(center));
            }
            if hopeless(&out) {
                return out;
            }
        }
        if hopeless(&out) {
            return out;
        }
    }
    out
}

/// Arena-style buffers for the `P_score` kernels.
///
/// All methods leave the buffers grown to the largest problem seen so
/// far; repeated fills of similar-sized words allocate nothing.
#[derive(Debug, Default)]
pub struct DpWorkspace {
    /// Rolling DP row `i-1`; after a fill, holds the last row.
    pub(crate) prev: Vec<Score>,
    /// Rolling DP row `i`.
    pub(crate) cur: Vec<Score>,
    /// Third rolling buffer (wavefront diagonals).
    pub(crate) aux: Vec<Score>,
    /// Reversed-word scratch for orientation searches.
    pub(crate) rev: Vec<Sym>,
    /// Whole-table scratch for the oracle's reversed-interval pass.
    pub(crate) grid: Vec<Score>,
    /// Cached query profile of the last profiled fill (generation
    /// keyed; see [`QueryProfile`]).
    pub(crate) profile: QueryProfile,
    /// Row-symbol → profile-row resolution of the last profiled fill.
    pub(crate) row_map: Vec<u32>,
    /// Block-boundary column carry of the blocked kernel.
    pub(crate) carry: Vec<Score>,
    fills: u64,
    reallocs: u64,
}

impl DpWorkspace {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of DP fills served by this workspace.
    pub fn fills(&self) -> u64 {
        self.fills
    }

    /// Number of buffer growth events — the allocations proxy reported
    /// by `exp_throughput`. A per-call-allocation baseline performs one
    /// (or more) allocation per fill; a warmed workspace performs none.
    pub fn reallocs(&self) -> u64 {
        self.reallocs
    }

    /// Reset the fill/realloc counters (buffers stay warm).
    pub fn reset_stats(&mut self) {
        self.fills = 0;
        self.reallocs = 0;
    }

    /// Record a fill about to run with `cols` DP columns, growing the
    /// two rolling rows if needed.
    pub(crate) fn note_fill(&mut self, cols: usize) {
        self.fills += 1;
        if self.prev.len() < cols || self.cur.len() < cols {
            self.reallocs += 1;
        }
    }

    /// Count an impending growth of the wavefront's third buffer (the
    /// sweep itself performs the resize).
    fn note_aux(&mut self, len: usize) {
        if self.aux.len() < len {
            self.reallocs += 1;
        }
    }

    /// `P_score(u, v)` into reused buffers; bit-identical to
    /// [`crate::p_score`]. Fills large enough to amortise a profile
    /// build ([`PROFILE_MIN_CELLS`]) run hash-free through the
    /// profiled split-recurrence kernel; small fills and fills whose
    /// profile would exceed [`crate::PROFILE_MAX_CELLS`] take the
    /// scalar reference path.
    pub fn p_score(&mut self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Score {
        if u.is_empty() || v.is_empty() {
            return 0;
        }
        // Shorter word on the column axis, exactly as the free function.
        let (a, b, swapped) = if v.len() <= u.len() {
            (u, v, false)
        } else {
            (v, u, true)
        };
        self.note_fill(b.len() + 1);
        if a.len() * b.len() >= PROFILE_MIN_CELLS {
            if let Some(s) = self.fill_with_profile(sigma, a, b, swapped, KERNEL_BLOCK) {
                return s;
            }
        }
        self.fill_scalar(sigma, a, b, swapped)
    }

    /// The scalar reference fill over the already-swapped operands.
    fn fill_scalar(&mut self, sigma: &ScoreTable, a: &[Sym], b: &[Sym], swapped: bool) -> Score {
        if swapped {
            fill_rolling(
                |x, y| sigma.score(y, x),
                a,
                b,
                &mut self.prev,
                &mut self.cur,
            )
        } else {
            fill_rolling(
                |x, y| sigma.score(x, y),
                a,
                b,
                &mut self.prev,
                &mut self.cur,
            )
        }
    }

    /// Build (or rebuild) the workspace profile for `a` × `b` and run
    /// the split-recurrence kernel. `None` when the profile would be
    /// too large — the caller falls back to the scalar kernel.
    /// `swapped` mirrors the operand swap of [`DpWorkspace::p_score`]:
    /// the row word is then the M side and σ is probed `(col, row)`.
    fn fill_with_profile(
        &mut self,
        sigma: &ScoreTable,
        a: &[Sym],
        b: &[Sym],
        swapped: bool,
        block: usize,
    ) -> Option<Score> {
        let generation = self.profile.build(sigma, a, b, swapped)?;
        self.profile.map_rows(a, &mut self.row_map);
        Some(fill_profiled(
            &self.profile,
            generation,
            &self.row_map,
            0,
            b.len(),
            block,
            &mut self.prev,
            &mut self.cur,
            &mut self.carry,
        ))
    }

    /// `P_score(u, v)` through one forced kernel path — the bench and
    /// differential-test hook. All modes perform the same
    /// shorter-word-on-columns swap, so they time identical problems;
    /// the profiled modes fall back to scalar only when the profile
    /// exceeds [`crate::PROFILE_MAX_CELLS`]. Bit-identical across
    /// modes.
    pub fn p_score_kernel(
        &mut self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
        mode: KernelMode,
    ) -> Score {
        if u.is_empty() || v.is_empty() {
            return 0;
        }
        let (a, b, swapped) = if v.len() <= u.len() {
            (u, v, false)
        } else {
            (v, u, true)
        };
        self.note_fill(b.len() + 1);
        let block = match mode {
            KernelMode::Scalar => return self.fill_scalar(sigma, a, b, swapped),
            KernelMode::Profiled => usize::MAX,
            KernelMode::ProfiledBlocked => KERNEL_BLOCK,
        };
        match self.fill_with_profile(sigma, a, b, swapped, block) {
            Some(s) => s,
            None => self.fill_scalar(sigma, a, b, swapped),
        }
    }

    /// Optimal alignment with traceback into the reused whole-table
    /// scratch; bit-identical to [`crate::align_words`], which remains
    /// as the allocating wrapper for external callers. The full matrix
    /// is filled hash-free through the query profile (scalar σ probes
    /// below the profile threshold or above the profile cap), and only
    /// the traceback path re-probes σ.
    pub fn align_words(
        &mut self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
    ) -> (Score, AlignColumns) {
        let rows = u.len() + 1;
        let cols = v.len() + 1;
        self.note_fill(cols);
        let mut grid = self.take_grid(rows * cols);
        let profiled = u.len() * v.len() >= PROFILE_MIN_CELLS
            && self.profile.build(sigma, u, v, false).is_some();
        if profiled {
            self.profile.map_rows(u, &mut self.row_map);
        }
        for i in 1..rows {
            let (above, row) = {
                let (a, b) = grid.split_at_mut(i * cols);
                (&a[(i - 1) * cols..], &mut b[..cols])
            };
            if profiled {
                let s = self.profile.row(self.row_map[i - 1]);
                for j in 1..cols {
                    let diag = above[j - 1] + s[j - 1];
                    row[j] = diag.max(above[j]).max(row[j - 1]);
                }
            } else {
                let ui = u[i - 1];
                for j in 1..cols {
                    let diag = above[j - 1] + sigma.score(ui, v[j - 1]);
                    row[j] = diag.max(above[j]).max(row[j - 1]);
                }
            }
        }
        let score = grid[rows * cols - 1];
        let columns = traceback_from(&grid, cols, sigma, u, v);
        self.put_grid(grid);
        (score, columns)
    }

    /// Banded `P_score` into reused buffers; bit-identical to
    /// [`crate::p_score_banded`].
    pub fn p_score_banded(
        &mut self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
        band: usize,
    ) -> Score {
        if u.is_empty() || v.is_empty() {
            return 0;
        }
        self.note_fill((2 * band + 1).min(v.len() + 1));
        fill_banded(sigma, u, v, band, &mut self.prev, &mut self.cur)
    }

    /// Whether the positive-cell scan applies: with a positive default
    /// score every cell can be positive and neither shortcut is sound.
    #[inline]
    fn can_scan(sigma: &ScoreTable) -> bool {
        sigma.default_score <= 0
    }

    /// Run the provably exact fill for one orientation given the
    /// positive-cell deviation `dev`: the banded kernel at half-width
    /// `dev + ⌈m/n⌉ + 1` when that window is narrower than the full
    /// row, the rolling kernel otherwise.
    fn fill_exact(&mut self, sigma: &ScoreTable, u: &[Sym], v: &[Sym], dev: usize) -> Score {
        let n = u.len();
        let m = v.len();
        let band = dev + m.div_ceil(n) + 1;
        if 2 * band + 1 < m + 1 {
            self.note_fill(2 * band + 1);
            fill_banded(sigma, u, v, band, &mut self.prev, &mut self.cur)
        } else {
            self.p_score(sigma, u, v)
        }
    }

    /// `P_score` choosing the cheapest provably exact route: early
    /// exit when no cell can score positively, the lossless band when
    /// the positive cells hug the rescaled diagonal, the plain rolling
    /// fill otherwise. Always equals [`crate::p_score`].
    pub fn p_score_auto(&mut self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Score {
        if u.is_empty() || v.is_empty() {
            return 0;
        }
        if !Self::can_scan(sigma) {
            return self.p_score(sigma, u, v);
        }
        let cells = scan_positive_cells(sigma, u, v);
        if !cells.any {
            return 0;
        }
        self.fill_exact(sigma, u, v, cells.dev_same)
    }

    /// `MS(u, v)` — the orientation max — into reused buffers,
    /// including the reversed-word scratch. One positive-cell scan
    /// serves both orientations. Bit-identical to [`crate::ms_words`].
    pub fn ms_words(&mut self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, Orient) {
        if u.is_empty() || v.is_empty() {
            return (0, Orient::Same);
        }
        let cells = if Self::can_scan(sigma) {
            Some(scan_positive_cells(sigma, u, v))
        } else {
            None
        };
        if let Some(c) = cells {
            if !c.any {
                return (0, Orient::Same);
            }
        }
        let same = match cells {
            Some(c) => self.fill_exact(sigma, u, v, c.dev_same),
            None => self.p_score(sigma, u, v),
        };
        let mut rev = std::mem::take(&mut self.rev);
        rev.clear();
        rev.extend_from_slice(v);
        reverse_word_in_place(&mut rev);
        let reversed = match cells {
            Some(c) => self.fill_exact(sigma, u, &rev, c.dev_rev),
            None => self.p_score(sigma, u, &rev),
        };
        self.rev = rev;
        if reversed > same {
            (reversed, Orient::Reversed)
        } else {
            (same, Orient::Same)
        }
    }

    /// `P_score` under a pinned orientation; bit-identical to
    /// [`crate::match_score::p_score_oriented`].
    pub fn p_score_oriented(
        &mut self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
        orient: Orient,
    ) -> Score {
        match orient {
            Orient::Same => self.p_score_auto(sigma, u, v),
            Orient::Reversed => {
                if u.is_empty() || v.is_empty() {
                    return 0;
                }
                let mut rev = std::mem::take(&mut self.rev);
                rev.clear();
                rev.extend_from_slice(v);
                reverse_word_in_place(&mut rev);
                let s = if Self::can_scan(sigma) {
                    let cells = scan_positive_cells(sigma, u, v);
                    if !cells.any {
                        0
                    } else {
                        self.fill_exact(sigma, u, &rev, cells.dev_rev)
                    }
                } else {
                    self.p_score(sigma, u, &rev)
                };
                self.rev = rev;
                s
            }
        }
    }

    /// Detach the whole-table scratch at `len` cells, zeroed. Pair
    /// with [`DpWorkspace::put_grid`] so the buffer survives for the
    /// next fill (detaching sidesteps overlapping field borrows).
    pub(crate) fn take_grid(&mut self, len: usize) -> Vec<Score> {
        let mut g = std::mem::take(&mut self.grid);
        if g.len() < len {
            self.reallocs += 1;
            g.resize(len, 0);
        }
        g[..len].fill(0);
        g
    }

    /// Return the scratch detached by [`DpWorkspace::take_grid`].
    pub(crate) fn put_grid(&mut self, g: Vec<Score>) {
        self.grid = g;
    }

    /// Borrow the three wavefront diagonal buffers. Growth and zeroing
    /// are the wavefront sweep's job; this only accounts for the fill
    /// and any growth it is about to cause.
    pub(crate) fn diagonals(
        &mut self,
        len: usize,
    ) -> (&mut Vec<Score>, &mut Vec<Score>, &mut Vec<Score>) {
        self.note_fill(len);
        self.note_aux(len);
        (&mut self.prev, &mut self.cur, &mut self.aux)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::p_score;
    use crate::match_score::ms_words;

    fn table(seed: u64, syms: u32) -> ScoreTable {
        let mut t = ScoreTable::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for a in 0..syms {
            for b in 0..syms {
                let r = next() % 9;
                if r > 3 {
                    t.set(Sym::fwd(a), Sym::fwd(1000 + b), (r as i64) - 3);
                }
            }
        }
        t
    }

    fn word(seed: u64, len: usize, syms: u32, base: u32) -> Vec<Sym> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Sym {
                    id: base + (state % syms as u64) as u32,
                    rev: state.is_multiple_of(5),
                }
            })
            .collect()
    }

    #[test]
    fn workspace_p_score_matches_free_function() {
        let t = table(3, 8);
        let mut ws = DpWorkspace::new();
        for (lu, lv) in [(0, 5), (5, 0), (1, 1), (7, 3), (3, 7), (20, 20), (31, 9)] {
            let u = word(lu as u64 + 1, lu, 8, 0);
            let v = word(lv as u64 + 2, lv, 8, 1000);
            assert_eq!(ws.p_score(&t, &u, &v), p_score(&t, &u, &v), "{lu}x{lv}");
            assert_eq!(ws.p_score_auto(&t, &u, &v), p_score(&t, &u, &v));
        }
    }

    #[test]
    fn workspace_ms_matches_free_function() {
        let t = table(9, 6);
        let mut ws = DpWorkspace::new();
        for (lu, lv) in [(4, 4), (9, 2), (2, 9), (12, 5)] {
            let u = word(lu as u64 + 7, lu, 6, 0);
            let v = word(lv as u64 + 8, lv, 6, 1000);
            assert_eq!(ws.ms_words(&t, &u, &v), ms_words(&t, &u, &v), "{lu}x{lv}");
        }
    }

    #[test]
    fn buffers_grow_once_then_stay() {
        let t = table(5, 4);
        let u = word(1, 16, 4, 0);
        let v = word(2, 16, 4, 1000);
        let mut ws = DpWorkspace::new();
        let _ = ws.p_score(&t, &u, &v);
        let after_first = ws.reallocs();
        assert!(after_first >= 1);
        for _ in 0..10 {
            let _ = ws.p_score(&t, &u, &v);
        }
        assert_eq!(ws.reallocs(), after_first, "warm fills must not grow");
        assert_eq!(ws.fills(), 11);
        ws.reset_stats();
        assert_eq!(ws.fills(), 0);
    }
}
