//! Wavefront-parallel `P_score`.
//!
//! Cells of an anti-diagonal of the DP matrix depend only on the two
//! previous anti-diagonals, so each diagonal can be filled in parallel
//! (the classic parallel-DP decomposition the paper's venue — IPPS —
//! targets). Three rolling diagonal buffers keep memory at `O(|u|)`.
//!
//! The parallel result is bit-identical to [`crate::dp::p_score`]:
//! scores are integers and max is associative, so there is no
//! floating-point reassociation hazard.

use crate::kernel::QueryProfile;
use fragalign_model::{Score, ScoreTable, Sym};
use rayon::prelude::*;

/// Below this many cells the sequential DP wins; chosen by the
/// `align_dp` bench (see EXPERIMENTS.md T8). Fork/join overhead plus
/// the σ hash lookups make fine-grained parallelism unprofitable until
/// diagonals are long, so the cutoff is high.
pub const WAVEFRONT_CUTOFF_CELLS: usize = 512 * 512;

/// Minimum cells per rayon task along one diagonal; below this the
/// scheduling overhead exceeds the work.
pub const WAVEFRONT_MIN_CHUNK: usize = 512;

/// `P_score(u, v)` filled diagonal-by-diagonal with rayon.
///
/// Falls back to the sequential kernel for small inputs where the
/// fork/join overhead dominates. Allocates its three diagonal buffers
/// per call; [`p_score_wavefront_with`] reuses a workspace instead.
pub fn p_score_wavefront(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Score {
    if u.is_empty() || v.is_empty() {
        return 0;
    }
    if u.len() * v.len() < WAVEFRONT_CUTOFF_CELLS {
        return crate::dp::p_score(sigma, u, v);
    }
    let mut prev2 = Vec::new();
    let mut prev1 = Vec::new();
    let mut cur = Vec::new();
    let mut profile = QueryProfile::default();
    let mut row_map = Vec::new();
    wavefront_profiled(
        sigma,
        u,
        v,
        &mut profile,
        &mut row_map,
        &mut prev2,
        &mut prev1,
        &mut cur,
    )
}

/// [`p_score_wavefront`] into a reused [`crate::DpWorkspace`]:
/// bit-identical results, no per-call diagonal allocations.
pub fn p_score_wavefront_with(
    sigma: &ScoreTable,
    u: &[Sym],
    v: &[Sym],
    ws: &mut crate::DpWorkspace,
) -> Score {
    if u.is_empty() || v.is_empty() {
        return 0;
    }
    if u.len() * v.len() < WAVEFRONT_CUTOFF_CELLS {
        return ws.p_score(sigma, u, v);
    }
    // Detach the profile so the sweep can borrow the diagonal buffers
    // mutably alongside it.
    let mut profile = std::mem::take(&mut ws.profile);
    let mut row_map = std::mem::take(&mut ws.row_map);
    let (prev2, prev1, cur) = ws.diagonals(u.len() + 1);
    let s = wavefront_profiled(sigma, u, v, &mut profile, &mut row_map, prev2, prev1, cur);
    ws.profile = profile;
    ws.row_map = row_map;
    s
}

/// Build the query profile for `u` × `v` (scalar σ probes when it
/// would exceed the cap) and run the anti-diagonal sweep with a
/// hash-free cell lookup. Inputs here are beyond the sequential
/// cutoff, so the build always amortises.
#[allow(clippy::too_many_arguments)]
fn wavefront_profiled(
    sigma: &ScoreTable,
    u: &[Sym],
    v: &[Sym],
    profile: &mut QueryProfile,
    row_map: &mut Vec<u32>,
    prev2: &mut Vec<Score>,
    prev1: &mut Vec<Score>,
    cur: &mut Vec<Score>,
) -> Score {
    if profile.build(sigma, u, v, false).is_some() {
        profile.map_rows(u, row_map);
        let p = &*profile;
        let rm = &*row_map;
        wavefront_fill(
            |i, j| p.cell(rm[i - 1], j - 1),
            u.len(),
            v.len(),
            prev2,
            prev1,
            cur,
        )
    } else {
        wavefront_fill(
            |i, j| sigma.score(u[i - 1], v[j - 1]),
            u.len(),
            v.len(),
            prev2,
            prev1,
            cur,
        )
    }
}

/// The anti-diagonal sweep over caller-provided buffers (grown and
/// zeroed here as needed). Generic over the cell score `score(i, j)`
/// = `σ(u_i, v_j)` (1-based), so the profiled and scalar lookups run
/// through one audited sweep.
fn wavefront_fill<F: Fn(usize, usize) -> Score + Sync>(
    score: F,
    n: usize,
    m: usize,
    prev2: &mut Vec<Score>,
    prev1: &mut Vec<Score>,
    cur: &mut Vec<Score>,
) -> Score {
    // Diagonal k holds cells (i, j) with i + j = k, 0 ≤ i ≤ n,
    // 0 ≤ j ≤ m; buffers are indexed by i.
    for buf in [&mut *prev2, &mut *prev1, &mut *cur] {
        if buf.len() < n + 1 {
            buf.resize(n + 1, 0);
        }
        buf[..=n].fill(0);
    }
    for k in 2..=(n + m) {
        let lo = k.saturating_sub(m).max(1);
        let hi = (k - 1).min(n);
        // Cells with i == 0 or j == 0 stay 0 (base row/column); for
        // 2 ≤ k ≤ n + m the diagonal always has at least one interior
        // cell.
        debug_assert!(lo <= hi);
        {
            let prev1_ref = &prev1;
            let prev2_ref = &prev2;
            cur[lo..=hi]
                .par_iter_mut()
                .with_min_len(WAVEFRONT_MIN_CHUNK)
                .enumerate()
                .for_each(|(off, cell)| {
                    let i = lo + off;
                    let j = k - i;
                    let diag = prev2_ref[i - 1] + score(i, j);
                    let up = prev1_ref[i - 1]; // (i-1, j) lives on diag k-1
                    let left = prev1_ref[i]; // (i, j-1) lives on diag k-1
                    *cell = diag.max(up).max(left);
                });
        }
        // Keep boundary cells of the current diagonal zeroed.
        if lo > 1 {
            cur[lo - 1] = 0;
        }
        std::mem::swap(prev2, prev1);
        std::mem::swap(prev1, cur);
    }
    // After the final swap the last diagonal (k = n + m), which contains
    // only the cell (n, m), sits in prev1.
    prev1[n]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dp::p_score;
    use fragalign_model::ScoreTable;

    fn table(seed: u64, syms: u32) -> ScoreTable {
        // Small deterministic pseudo-random score table.
        let mut t = ScoreTable::new();
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for a in 0..syms {
            for b in 0..syms {
                let r = next() % 7;
                if r > 2 {
                    t.set(Sym::fwd(a), Sym::fwd(1000 + b), (r - 2) as i64);
                }
            }
        }
        t
    }

    fn word(seed: u64, len: usize, syms: u32, base: u32) -> Vec<Sym> {
        let mut state = seed | 1;
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                Sym::fwd(base + (state % syms as u64) as u32)
            })
            .collect()
    }

    #[test]
    fn small_inputs_fall_back() {
        let t = table(7, 4);
        let u = word(1, 10, 4, 0);
        let v = word(2, 12, 4, 1000);
        assert_eq!(p_score_wavefront(&t, &u, &v), p_score(&t, &u, &v));
    }

    #[test]
    fn wavefront_equals_sequential_beyond_cutoff() {
        let t = table(42, 8);
        for (lu, lv) in [(70, 70), (65, 200), (200, 65), (128, 131), (600, 600)] {
            let u = word(3 + lu as u64, lu, 8, 0);
            let v = word(5 + lv as u64, lv, 8, 1000);
            assert_eq!(
                p_score_wavefront(&t, &u, &v),
                p_score(&t, &u, &v),
                "sizes {lu}x{lv}"
            );
        }
    }

    #[test]
    fn extreme_aspect_ratio() {
        let t = table(11, 4);
        let u = word(9, 2, 4, 0);
        let v = word(10, 5000, 4, 1000);
        assert_eq!(p_score_wavefront(&t, &u, &v), p_score(&t, &u, &v));
    }

    #[test]
    fn empty_inputs() {
        let t = table(1, 2);
        assert_eq!(p_score_wavefront(&t, &[], &[]), 0);
        assert_eq!(p_score_wavefront(&t, &word(1, 5, 2, 0), &[]), 0);
    }
}
