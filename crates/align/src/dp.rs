//! The `P_score` dynamic program.
//!
//! `P_score(u, v) = max_{u' ∈ P_u, v' ∈ P_v} Score(u', v')` — the
//! optimal alignment of two symbol lists where unmatched symbols pair
//! with the free padding `⊥` (score 0) and a column of two symbols
//! scores `σ`. The recurrence is the textbook one:
//!
//! ```text
//! M[i][j] = max(M[i-1][j], M[i][j-1], M[i-1][j-1] + σ(u_i, v_j))
//! ```
//!
//! with `M[0][·] = M[·][0] = 0`. All values are ≥ 0 and the matrix is
//! monotone along both axes; negative `σ` entries are simply never
//! chosen.

use fragalign_model::consistency::{AlignColumns, SiteAligner};
use fragalign_model::{Score, ScoreTable, Sym};

/// A filled `P_score` DP matrix over two words. Row-major flat storage,
/// `(|u|+1) × (|v|+1)`. Beyond the final score, the matrix exposes all
/// prefix-vs-prefix scores, which the interval oracle and the
/// staircase search reuse.
#[derive(Clone, Debug)]
pub struct DpMatrix {
    cells: Vec<Score>,
    rows: usize,
    cols: usize,
}

impl DpMatrix {
    /// Fill the matrix for `u` vs `v` under `sigma`.
    pub fn fill(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Self {
        let rows = u.len() + 1;
        let cols = v.len() + 1;
        let mut cells = vec![0 as Score; rows * cols];
        for i in 1..rows {
            let ui = u[i - 1];
            let (prev_row, row) = {
                // Split borrows: row i-1 is read, row i written.
                let (a, b) = cells.split_at_mut(i * cols);
                (&a[(i - 1) * cols..], &mut b[..cols])
            };
            for j in 1..cols {
                let diag = prev_row[j - 1] + sigma.score(ui, v[j - 1]);
                let up = prev_row[j];
                let left = row[j - 1];
                row[j] = diag.max(up).max(left);
            }
        }
        DpMatrix { cells, rows, cols }
    }

    /// `P_score(u[..i], v[..j])`.
    #[inline]
    pub fn prefix_score(&self, i: usize, j: usize) -> Score {
        self.cells[i * self.cols + j]
    }

    /// `P_score(u, v)`.
    pub fn score(&self) -> Score {
        self.cells[self.rows * self.cols - 1]
    }

    /// The final row: `P_score(u, v[..j])` for every `j`. Used by the
    /// interval oracle to read off all end positions in one sweep.
    pub fn last_row(&self) -> &[Score] {
        &self.cells[(self.rows - 1) * self.cols..]
    }

    /// Trace back one optimal alignment as monotone column pairs
    /// covering every symbol of both words; `None` marks a `⊥`.
    pub fn traceback(
        &self,
        sigma: &ScoreTable,
        u: &[Sym],
        v: &[Sym],
    ) -> Vec<(Option<usize>, Option<usize>)> {
        traceback_from(&self.cells, self.cols, sigma, u, v)
    }
}

/// [`DpMatrix::traceback`] over any row-major `(|u|+1) × (|v|+1)`
/// prefix-score grid — shared with [`crate::DpWorkspace::align_words`],
/// whose grid lives in the workspace scratch rather than a `DpMatrix`.
pub(crate) fn traceback_from(
    cells: &[Score],
    cols: usize,
    sigma: &ScoreTable,
    u: &[Sym],
    v: &[Sym],
) -> Vec<(Option<usize>, Option<usize>)> {
    let at = |i: usize, j: usize| cells[i * cols + j];
    let mut out = Vec::with_capacity(u.len() + v.len());
    let (mut i, mut j) = (u.len(), v.len());
    while i > 0 || j > 0 {
        let cur = at(i, j);
        if i > 0 && j > 0 && cur == at(i - 1, j - 1) + sigma.score(u[i - 1], v[j - 1]) {
            out.push((Some(i - 1), Some(j - 1)));
            i -= 1;
            j -= 1;
        } else if i > 0 && cur == at(i - 1, j) {
            out.push((Some(i - 1), None));
            i -= 1;
        } else {
            debug_assert!(j > 0 && cur == at(i, j - 1));
            out.push((None, Some(j - 1)));
            j -= 1;
        }
    }
    out.reverse();
    out
}

/// The rolling-row `P_score` recurrence over caller-provided buffers:
/// `u` on the row axis, `v` on the column axis, `score(u_i, v_j)` as
/// the column score. Buffers are grown as needed; on return, `prev`
/// holds the final DP row (`P_score(u, v[..j])` at index `j`), which
/// the interval oracle reads off wholesale.
///
/// This is the **scalar reference kernel** and is deliberately kept
/// exactly in the textbook shape even though the profiled
/// split-recurrence kernels in [`crate::kernel`] outrun it: its
/// correctness is auditable against the recurrence by eye, it takes
/// an arbitrary score *closure* (no profile build, no admissibility
/// conditions), and the `proptest_kernels` differential net pins every
/// faster path — profiled, blocked, banded, wavefront — against its
/// output bit for bit. Optimising it would replace the measuring stick
/// with the thing being measured.
pub(crate) fn fill_rolling<F: Fn(Sym, Sym) -> Score>(
    score: F,
    u: &[Sym],
    v: &[Sym],
    prev: &mut Vec<Score>,
    cur: &mut Vec<Score>,
) -> Score {
    let cols = v.len() + 1;
    if prev.len() < cols {
        prev.resize(cols, 0);
    }
    if cur.len() < cols {
        cur.resize(cols, 0);
    }
    prev[..cols].fill(0);
    for i in 1..=u.len() {
        let ui = u[i - 1];
        cur[0] = 0;
        for j in 1..cols {
            let s = score(ui, v[j - 1]);
            cur[j] = (prev[j - 1] + s).max(prev[j]).max(cur[j - 1]);
        }
        std::mem::swap(prev, cur);
    }
    prev[cols - 1]
}

/// `P_score(u, v)` without keeping the matrix: two rolling rows,
/// `O(min)` memory after choosing the shorter word as the column axis.
/// Allocates per call; [`crate::DpWorkspace::p_score`] is the reusing
/// variant.
pub fn p_score(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Score {
    if u.is_empty() || v.is_empty() {
        return 0;
    }
    // Keep the inner dimension the shorter word.
    let (a, b, swapped) = if v.len() <= u.len() {
        (u, v, false)
    } else {
        (v, u, true)
    };
    let mut prev = Vec::with_capacity(b.len() + 1);
    let mut cur = Vec::with_capacity(b.len() + 1);
    if swapped {
        fill_rolling(|x, y| sigma.score(y, x), a, b, &mut prev, &mut cur)
    } else {
        fill_rolling(|x, y| sigma.score(x, y), a, b, &mut prev, &mut cur)
    }
}

/// Optimal alignment with traceback: `(score, columns)`.
pub fn align_words(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, AlignColumns) {
    let m = DpMatrix::fill(sigma, u, v);
    let cols = m.traceback(sigma, u, v);
    (m.score(), cols)
}

/// [`SiteAligner`] backed by the full DP: layouts built with it realise
/// exactly the `P_score` optimum of every match.
#[derive(Clone, Copy, Debug, Default)]
pub struct DpAligner;

impl SiteAligner for DpAligner {
    fn align_words(&self, sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, AlignColumns) {
        align_words(sigma, u, v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::Sym;

    fn sigma_diag(pairs: &[(u32, u32, i64)]) -> ScoreTable {
        let mut t = ScoreTable::new();
        for &(a, b, s) in pairs {
            t.set(Sym::fwd(a), Sym::fwd(b), s);
        }
        t
    }

    fn w(ids: &[u32]) -> Vec<Sym> {
        ids.iter().map(|&i| Sym::fwd(i)).collect()
    }

    #[test]
    fn empty_words_score_zero() {
        let t = ScoreTable::new();
        assert_eq!(p_score(&t, &[], &[]), 0);
        assert_eq!(p_score(&t, &w(&[1]), &[]), 0);
        assert_eq!(p_score(&t, &[], &w(&[1])), 0);
        let (s, cols) = align_words(&t, &w(&[1, 2]), &[]);
        assert_eq!(s, 0);
        assert_eq!(cols.len(), 2);
    }

    #[test]
    fn single_pair() {
        let t = sigma_diag(&[(0, 10, 5)]);
        assert_eq!(p_score(&t, &w(&[0]), &w(&[10])), 5);
    }

    #[test]
    fn crossing_pairs_must_choose() {
        // u = [a, b], v = [b', a'] where a~a' and b~b' both score:
        // order forbids taking both (Fig. 3, second example).
        let t = sigma_diag(&[(0, 10, 4), (1, 11, 3)]);
        let u = w(&[0, 1]);
        let v = w(&[11, 10]); // reversed order
        assert_eq!(p_score(&t, &u, &v), 4, "only the better pair survives");
    }

    #[test]
    fn skips_are_free() {
        let t = sigma_diag(&[(0, 10, 4), (1, 11, 3)]);
        let u = w(&[0, 5, 5, 5, 1]);
        let v = w(&[10, 11]);
        assert_eq!(p_score(&t, &u, &v), 7);
    }

    #[test]
    fn negative_scores_never_forced() {
        let mut t = sigma_diag(&[(0, 10, 4)]);
        t.set(Sym::fwd(1), Sym::fwd(11), -5);
        let u = w(&[0, 1]);
        let v = w(&[10, 11]);
        assert_eq!(p_score(&t, &u, &v), 4);
    }

    #[test]
    fn traceback_covers_all_symbols_and_matches_score() {
        let t = sigma_diag(&[(0, 10, 4), (1, 11, 3), (2, 12, 9)]);
        let u = w(&[0, 7, 1, 2]);
        let v = w(&[10, 11, 8, 12]);
        let (score, cols) = align_words(&t, &u, &v);
        assert_eq!(score, 16);
        // Every u offset and v offset appears exactly once, monotone.
        let us: Vec<usize> = cols.iter().filter_map(|c| c.0).collect();
        let vs: Vec<usize> = cols.iter().filter_map(|c| c.1).collect();
        assert_eq!(us, (0..u.len()).collect::<Vec<_>>());
        assert_eq!(vs, (0..v.len()).collect::<Vec<_>>());
        // Recomputing the column score reproduces the DP score.
        let col_score: i64 = cols
            .iter()
            .filter_map(|&(a, b)| Some(t.score(u[a?], v[b?])))
            .sum();
        assert_eq!(col_score, score);
    }

    #[test]
    fn prefix_scores_monotone() {
        let t = sigma_diag(&[(0, 10, 4), (1, 11, 3)]);
        let u = w(&[0, 1]);
        let v = w(&[10, 11]);
        let m = DpMatrix::fill(&t, &u, &v);
        for i in 0..=u.len() {
            for j in 1..=v.len() {
                assert!(m.prefix_score(i, j) >= m.prefix_score(i, j - 1));
            }
        }
        for j in 0..=v.len() {
            for i in 1..=u.len() {
                assert!(m.prefix_score(i, j) >= m.prefix_score(i - 1, j));
            }
        }
        assert_eq!(m.last_row(), &[0, 4, 7]);
    }

    #[test]
    fn p_score_agrees_with_matrix_on_swapped_args() {
        // p_score internally swaps to keep the inner loop short; make
        // sure σ is still applied as σ(h-side, m-side).
        let mut t = ScoreTable::new();
        t.set(Sym::fwd(0), Sym::fwd(10), 4); // σ(h=0, m=10) = 4
        let u = w(&[0]);
        let v = w(&[10, 11, 12]);
        assert_eq!(p_score(&t, &u, &v), 4);
        assert_eq!(p_score(&t, &v, &u), 0, "reversed roles find no σ entry");
    }

    /// Brute force: enumerate all monotone pairings of u and v.
    fn brute(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> Score {
        fn rec(sigma: &ScoreTable, u: &[Sym], v: &[Sym], i: usize, j: usize) -> Score {
            if i == u.len() || j == v.len() {
                return 0;
            }
            let take = sigma.score(u[i], v[j]) + rec(sigma, u, v, i + 1, j + 1);
            let skip_u = rec(sigma, u, v, i + 1, j);
            let skip_v = rec(sigma, u, v, i, j + 1);
            take.max(skip_u).max(skip_v)
        }
        rec(sigma, u, v, 0, 0)
    }

    #[test]
    fn dp_equals_bruteforce_exhaustive_small() {
        // All words of length ≤ 3 over a 3-symbol alphabet with a
        // fixed random-ish score table.
        let mut t = ScoreTable::new();
        for a in 0..3u32 {
            for b in 0..3u32 {
                t.set(Sym::fwd(a), Sym::fwd(10 + b), ((a * 7 + b * 3) % 5) as i64);
            }
        }
        let words: Vec<Vec<Sym>> = {
            let mut ws = vec![vec![]];
            for len in 1..=3 {
                let mut cur = vec![vec![0u32; len]];
                loop {
                    let word = cur.last().unwrap().clone();
                    ws.push(word.iter().map(|&i| Sym::fwd(i)).collect());
                    let mut next = word;
                    let mut k = 0;
                    loop {
                        if k == len {
                            break;
                        }
                        next[k] += 1;
                        if next[k] < 3 {
                            break;
                        }
                        next[k] = 0;
                        k += 1;
                    }
                    if k == len {
                        break;
                    }
                    cur.push(next);
                }
            }
            ws
        };
        for u in &words {
            for v0 in &words {
                let v: Vec<Sym> = v0.iter().map(|s| Sym::fwd(s.id + 10)).collect();
                assert_eq!(p_score(&t, u, &v), brute(&t, u, &v), "u={u:?} v={v:?}");
            }
        }
    }
}
