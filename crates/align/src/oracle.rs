//! Memoised match-score oracle.
//!
//! Match scores depend only on the instance, never on the current
//! solution (DESIGN.md decision D2), so every DP result can be cached
//! for the lifetime of a solver run. Two cache layers:
//!
//! * **interval tables** `MS(h, m(d, e))` for a whole fragment `h`
//!   against *every* interval of a fragment `m` — the 1-CSR → ISP
//!   reduction (§3.4) and the TPA subroutine (§4.2) consume profits in
//!   exactly this shape, and one DP sweep per start position fills a
//!   whole row of ends;
//! * **site pairs** `MS(h̄, m̄)` for arbitrary site pairs, used by the
//!   improvement methods.
//!
//! Reads take a shared lock; misses fill under a write lock. The
//! oracle is `Sync` and shared across rayon workers.

use crate::dp::fill_rolling;
use crate::kernel::{fill_profiled, KERNEL_BLOCK};
use crate::workspace::DpWorkspace;
use fragalign_model::symbol::reverse_word_in_place;
use fragalign_model::{FragId, Instance, Orient, Score, Site, Sym};
use fragalign_obs::TraceHandle;
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `MS(h, m(d, e))` for all `0 ≤ d ≤ e ≤ |m|`, plus the winning
/// orientation. Flat `(n+1)²` storage.
#[derive(Clone, Debug)]
pub struct IntervalTable {
    n: usize,
    score_same: Vec<Score>,
    score_rev: Vec<Score>,
}

impl IntervalTable {
    #[inline]
    fn idx(&self, d: usize, e: usize) -> usize {
        d * (self.n + 1) + e
    }

    /// Best score and orientation for the interval `[d, e)`.
    #[inline]
    pub fn get(&self, d: usize, e: usize) -> (Score, Orient) {
        debug_assert!(d <= e && e <= self.n);
        let s = self.score_same[self.idx(d, e)];
        let r = self.score_rev[self.idx(d, e)];
        if r > s {
            (r, Orient::Reversed)
        } else {
            (s, Orient::Same)
        }
    }

    /// Length of the indexed fragment.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — tables exist for real fragments.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Cache statistics (for the `oracle` bench and EXPERIMENTS.md T9).
#[derive(Debug, Default)]
pub struct OracleStats {
    /// Interval-table lookups served from cache.
    pub table_hits: AtomicU64,
    /// Interval tables computed.
    pub table_misses: AtomicU64,
    /// Site-pair lookups served from cache.
    pub pair_hits: AtomicU64,
    /// Site-pair scores computed.
    pub pair_misses: AtomicU64,
    /// DP fills run through pooled workspaces.
    pub dp_fills: AtomicU64,
    /// Workspace buffer growth events — the allocations proxy. With
    /// reuse on this converges; with reuse off it tracks `dp_fills`.
    pub dp_reallocs: AtomicU64,
}

/// Plain-integer copy of [`OracleStats`], for folding one oracle's
/// counters into another's. Solvers that build internal oracles over
/// derived instances (the factor-4 concatenations, portfolio racers)
/// absorb the inner counters so telemetry reports the whole solve.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OracleStatsSnapshot {
    /// Interval-table lookups served from cache.
    pub table_hits: u64,
    /// Interval tables computed.
    pub table_misses: u64,
    /// Site-pair lookups served from cache.
    pub pair_hits: u64,
    /// Site-pair scores computed.
    pub pair_misses: u64,
    /// DP fills run through pooled workspaces.
    pub dp_fills: u64,
    /// Workspace buffer growth events.
    pub dp_reallocs: u64,
}

impl std::ops::AddAssign for OracleStatsSnapshot {
    fn add_assign(&mut self, rhs: Self) {
        self.table_hits += rhs.table_hits;
        self.table_misses += rhs.table_misses;
        self.pair_hits += rhs.pair_hits;
        self.pair_misses += rhs.pair_misses;
        self.dp_fills += rhs.dp_fills;
        self.dp_reallocs += rhs.dp_reallocs;
    }
}

impl OracleStats {
    /// Read every counter at once (relaxed; exact when no fills race).
    pub fn snapshot(&self) -> OracleStatsSnapshot {
        OracleStatsSnapshot {
            table_hits: self.table_hits.load(Ordering::Relaxed),
            table_misses: self.table_misses.load(Ordering::Relaxed),
            pair_hits: self.pair_hits.load(Ordering::Relaxed),
            pair_misses: self.pair_misses.load(Ordering::Relaxed),
            dp_fills: self.dp_fills.load(Ordering::Relaxed),
            dp_reallocs: self.dp_reallocs.load(Ordering::Relaxed),
        }
    }

    /// Fold a snapshot's counts into these counters.
    pub fn absorb(&self, s: &OracleStatsSnapshot) {
        self.table_hits.fetch_add(s.table_hits, Ordering::Relaxed);
        self.table_misses
            .fetch_add(s.table_misses, Ordering::Relaxed);
        self.pair_hits.fetch_add(s.pair_hits, Ordering::Relaxed);
        self.pair_misses.fetch_add(s.pair_misses, Ordering::Relaxed);
        self.dp_fills.fetch_add(s.dp_fills, Ordering::Relaxed);
        self.dp_reallocs.fetch_add(s.dp_reallocs, Ordering::Relaxed);
    }
}

/// Shared, thread-safe score oracle over one instance.
pub struct ScoreOracle<'a> {
    inst: &'a Instance,
    tables: RwLock<HashMap<(FragId, FragId), Arc<IntervalTable>>>,
    pairs: RwLock<HashMap<(Site, Site), (Score, Orient)>>,
    oriented: RwLock<HashMap<(Site, Site, Orient), Score>>,
    /// Warm DP buffers, one checked out per cache miss. Workers in a
    /// parallel sweep each pop their own workspace, so fills never
    /// serialise on this lock.
    workspaces: Mutex<Vec<DpWorkspace>>,
    reuse: bool,
    /// Span sink for phase timing; disabled (inert) by default. The
    /// oracle carries the handle so DP-layer phases (table sweeps,
    /// chain window fills) can trace without threading a parameter
    /// through every solver signature.
    trace: TraceHandle,
    /// Hit/miss counters.
    pub stats: OracleStats,
}

impl<'a> ScoreOracle<'a> {
    /// Create an empty oracle for `inst` (workspace reuse on).
    pub fn new(inst: &'a Instance) -> Self {
        Self::with_workspace_reuse(inst, true)
    }

    /// Create an oracle with workspace pooling switched on or off.
    /// `reuse = false` restores the per-call-allocation behaviour —
    /// kept as the measurable baseline for `exp_throughput`.
    pub fn with_workspace_reuse(inst: &'a Instance, reuse: bool) -> Self {
        ScoreOracle {
            inst,
            tables: RwLock::new(HashMap::new()),
            pairs: RwLock::new(HashMap::new()),
            oriented: RwLock::new(HashMap::new()),
            workspaces: Mutex::new(Vec::new()),
            reuse,
            trace: TraceHandle::disabled(),
            stats: OracleStats::default(),
        }
    }

    /// Attach a trace handle; all subsequent DP phases record spans
    /// through it. Tracing is observational only — the same fills run
    /// either way.
    pub fn set_trace(&mut self, trace: TraceHandle) {
        self.trace = trace;
    }

    /// The oracle's trace handle (disabled unless
    /// [`ScoreOracle::set_trace`] was called).
    pub fn trace(&self) -> &TraceHandle {
        &self.trace
    }

    /// The instance the oracle scores.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// Whether this oracle pools workspaces across fills. Solvers that
    /// build internal oracles over derived instances propagate the
    /// flag so the per-call-allocation baseline stays honest end to
    /// end.
    pub fn workspace_reuse(&self) -> bool {
        self.reuse
    }

    /// Seed the workspace pool with an already-warm workspace. Batch
    /// solvers hand each worker's workspace to successive instances'
    /// oracles so buffers stay warm across the whole batch.
    pub fn adopt_workspace(&self, ws: DpWorkspace) {
        self.workspaces.lock().push(ws);
    }

    /// Take a workspace back out of the pool (empty pool yields a
    /// fresh one). The counterpart of [`ScoreOracle::adopt_workspace`].
    pub fn reclaim_workspace(&self) -> DpWorkspace {
        self.workspaces.lock().pop().unwrap_or_default()
    }

    /// Check a workspace out of the pool, run `f`, return it, and fold
    /// its fill/realloc deltas into the oracle stats.
    pub(crate) fn with_pooled<R>(&self, f: impl FnOnce(&mut DpWorkspace) -> R) -> R {
        let mut ws = if self.reuse {
            self.workspaces.lock().pop().unwrap_or_default()
        } else {
            DpWorkspace::new()
        };
        let (fills0, reallocs0) = (ws.fills(), ws.reallocs());
        let out = f(&mut ws);
        self.stats
            .dp_fills
            .fetch_add(ws.fills() - fills0, Ordering::Relaxed);
        self.stats
            .dp_reallocs
            .fetch_add(ws.reallocs() - reallocs0, Ordering::Relaxed);
        if self.reuse {
            self.workspaces.lock().push(ws);
        }
        out
    }

    /// The interval table of whole-fragment `plug` against intervals of
    /// `container`. `plug` and `container` may be any two fragments of
    /// opposite species (either order); scores are computed with σ
    /// applied H-side-first. Thin wrapper over
    /// [`ScoreOracle::interval_table_with`] using a pooled workspace.
    pub fn interval_table(&self, plug: FragId, container: FragId) -> Arc<IntervalTable> {
        if let Some(t) = self.tables.read().get(&(plug, container)) {
            self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.with_pooled(|ws| self.interval_table_with(plug, container, ws))
    }

    /// [`ScoreOracle::interval_table`] filling through a caller-owned
    /// workspace on a miss.
    pub fn interval_table_with(
        &self,
        plug: FragId,
        container: FragId,
        ws: &mut DpWorkspace,
    ) -> Arc<IntervalTable> {
        if let Some(t) = self.tables.read().get(&(plug, container)) {
            self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.stats.table_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(self.build_table(plug, container, ws));
        self.tables
            .write()
            .insert((plug, container), Arc::clone(&table));
        table
    }

    fn build_table(&self, plug: FragId, container: FragId, ws: &mut DpWorkspace) -> IntervalTable {
        let u_raw = &self.inst.fragment(plug).regions;
        let w_raw = &self.inst.fragment(container).regions;
        let n = w_raw.len();
        let h_first = plug.species == fragalign_model::Species::H;
        let mut table_span = self.trace.span("table_fill");

        // σ must see (H symbol, M symbol): when the plug is the M
        // fragment the lookup roles are swapped per cell. The tables
        // below are the oracle's *product* and stay heap-allocated;
        // only the per-start DP rows and the reversed-pass scratch come
        // from the workspace.
        let mut score_same = vec![0 as Score; (n + 1) * (n + 1)];
        let mut score_rev = vec![0 as Score; (n + 1) * (n + 1)];
        let sigma = &self.inst.sigma;

        // Same orientation: for each start d, one rolling DP sweep over
        // w[d..]; the final row read off wholesale gives P(u, w[d..e])
        // for every end e. One query profile built over the *whole*
        // container word serves all n+1 suffix fills via a column
        // offset — the per-fill cost of going hash-free amortises to
        // zero, so the sweep profiles regardless of fill size.
        let sweep = |ws: &mut DpWorkspace, w: &[Sym], out: &mut [Score]| -> bool {
            let generation = ws.profile.build(sigma, u_raw, w, !h_first);
            if generation.is_some() {
                ws.profile.map_rows(u_raw, &mut ws.row_map);
            }
            for d in 0..=n {
                let v = &w[d.min(w.len())..];
                ws.note_fill(v.len() + 1);
                if let Some(generation) = generation {
                    fill_profiled(
                        &ws.profile,
                        generation,
                        &ws.row_map,
                        d.min(w.len()),
                        v.len(),
                        KERNEL_BLOCK,
                        &mut ws.prev,
                        &mut ws.cur,
                        &mut ws.carry,
                    );
                } else if h_first {
                    // Profile over the cap: scalar fallback.
                    fill_rolling(
                        |a, b| sigma.score(a, b),
                        u_raw,
                        v,
                        &mut ws.prev,
                        &mut ws.cur,
                    );
                } else {
                    fill_rolling(
                        |a, b| sigma.score(b, a),
                        u_raw,
                        v,
                        &mut ws.prev,
                        &mut ws.cur,
                    );
                }
                // ws.prev holds the last filled row (the zero row when
                // u is empty).
                for e in d..=n {
                    out[d * (n + 1) + e] = ws.prev[e - d];
                }
            }
            generation.is_some()
        };
        let profiled = sweep(ws, w_raw, &mut score_same);

        // Reversed orientation: (w[d..e])^R = w^R[n-e..n-d]; fill a
        // table over w^R into the workspace grid and re-index.
        let mut w_rev = std::mem::take(&mut ws.rev);
        w_rev.clear();
        w_rev.extend_from_slice(w_raw);
        reverse_word_in_place(&mut w_rev);
        let mut rev_table = ws.take_grid((n + 1) * (n + 1));
        sweep(ws, &w_rev, &mut rev_table);
        ws.rev = w_rev;
        for d in 0..=n {
            for e in d..=n {
                score_rev[d * (n + 1) + e] = rev_table[(n - e) * (n + 1) + n - d];
            }
        }
        ws.put_grid(rev_table);

        table_span.set_label(if profiled { "profiled" } else { "scalar" });
        table_span.set_args(n as i64, 2 * (n as i64 + 1));

        IntervalTable {
            n,
            score_same,
            score_rev,
        }
    }

    /// `MS(h̄, m̄)` with memoisation. `h` must be an H-species site and
    /// `m` an M-species site. Thin wrapper over
    /// [`ScoreOracle::ms_with`] using a pooled workspace.
    pub fn ms(&self, h: Site, m: Site) -> (Score, Orient) {
        if let Some(&v) = self.pairs.read().get(&(h, m)) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.with_pooled(|ws| self.ms_with(h, m, ws))
    }

    /// [`ScoreOracle::ms`] filling through a caller-owned workspace on
    /// a miss.
    pub fn ms_with(&self, h: Site, m: Site, ws: &mut DpWorkspace) -> (Score, Orient) {
        let key = (h, m);
        if let Some(&v) = self.pairs.read().get(&key) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.stats.pair_misses.fetch_add(1, Ordering::Relaxed);
        let v = ws.ms_words(
            &self.inst.sigma,
            self.inst.site_word(h),
            self.inst.site_word(m),
        );
        self.pairs.write().insert(key, v);
        v
    }

    /// `MS(plug fragment, container(d, e))` through the interval table.
    pub fn ms_full_vs_interval(
        &self,
        plug: FragId,
        container: FragId,
        d: usize,
        e: usize,
    ) -> (Score, Orient) {
        self.interval_table(plug, container).get(d, e)
    }

    /// `P_score` under a pinned relative orientation, memoised. Border
    /// matches need this: their orientation is forced by the staircase
    /// end condition, not free to maximise. Thin wrapper over
    /// [`ScoreOracle::ms_oriented_with`] using a pooled workspace.
    pub fn ms_oriented(&self, h: Site, m: Site, orient: Orient) -> Score {
        if let Some(&v) = self.oriented.read().get(&(h, m, orient)) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.with_pooled(|ws| self.ms_oriented_with(h, m, orient, ws))
    }

    /// [`ScoreOracle::ms_oriented`] filling through a caller-owned
    /// workspace on a miss.
    pub fn ms_oriented_with(
        &self,
        h: Site,
        m: Site,
        orient: Orient,
        ws: &mut DpWorkspace,
    ) -> Score {
        let key = (h, m, orient);
        if let Some(&v) = self.oriented.read().get(&key) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.stats.pair_misses.fetch_add(1, Ordering::Relaxed);
        let v = ws.p_score_oriented(
            &self.inst.sigma,
            self.inst.site_word(h),
            self.inst.site_word(m),
            orient,
        );
        self.oriented.write().insert(key, v);
        v
    }

    /// Drop all cached entries (used by the cache ablation bench).
    /// Pooled workspaces keep their warm buffers.
    pub fn clear(&self) {
        self.tables.write().clear();
        self.pairs.write().clear();
        self.oriented.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_score::ms_words;
    use fragalign_model::instance::paper_example;
    use fragalign_model::{FragId, Site};

    #[test]
    fn interval_table_matches_direct_ms() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        for h in inst.frag_ids(fragalign_model::Species::H) {
            for m in inst.frag_ids(fragalign_model::Species::M) {
                let table = oracle.interval_table(h, m);
                let n = inst.frag_len(m);
                for d in 0..n {
                    for e in (d + 1)..=n {
                        let direct = ms_words(
                            &inst.sigma,
                            &inst.fragment(h).regions,
                            inst.fragment(m).slice(d, e),
                        );
                        assert_eq!(table.get(d, e), direct, "h={h:?} m={m:?} [{d},{e})");
                    }
                }
            }
        }
    }

    #[test]
    fn interval_table_m_plug_swaps_sigma_roles() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        // plug = m2 = ⟨u, v⟩ into intervals of h1 = ⟨a, b, c⟩:
        // σ(c, u) = 5 so interval ⟨c⟩ = [2,3) scores 5.
        let t = oracle.interval_table(FragId::m(1), FragId::h(0));
        assert_eq!(t.get(2, 3).0, 5);
        assert_eq!(t.get(0, 3).0, 5);
        assert_eq!(t.get(0, 2).0, 0);
    }

    #[test]
    fn reversed_intervals_reindexed_correctly() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        // h2 = ⟨d⟩ vs m2 = ⟨u, v⟩: σ(d, v^R) = 2 ⇒ interval ⟨v⟩ = [1,2)
        // scores 2 with Reversed orientation.
        let t = oracle.interval_table(FragId::h(1), FragId::m(1));
        assert_eq!(t.get(1, 2), (2, Orient::Reversed));
        assert_eq!(t.get(0, 1), (0, Orient::Same));
    }

    #[test]
    fn caches_hit_on_repeat() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let _ = oracle.interval_table(FragId::h(0), FragId::m(0));
        let _ = oracle.interval_table(FragId::h(0), FragId::m(0));
        assert_eq!(oracle.stats.table_misses.load(Ordering::Relaxed), 1);
        assert_eq!(oracle.stats.table_hits.load(Ordering::Relaxed), 1);
        let s1 = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        let s2 = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        assert_eq!(s1, s2);
        assert_eq!(oracle.stats.pair_misses.load(Ordering::Relaxed), 1);
        assert_eq!(oracle.stats.pair_hits.load(Ordering::Relaxed), 1);
        oracle.clear();
        let _ = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        assert_eq!(oracle.stats.pair_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_interval_scores_zero() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let t = oracle.interval_table(FragId::h(0), FragId::m(0));
        for d in 0..=inst.frag_len(FragId::m(0)) {
            assert_eq!(t.get(d, d).0, 0);
        }
    }
}
