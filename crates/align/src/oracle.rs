//! Memoised match-score oracle.
//!
//! Match scores depend only on the instance, never on the current
//! solution (DESIGN.md decision D2), so every DP result can be cached
//! for the lifetime of a solver run. Two cache layers:
//!
//! * **interval tables** `MS(h, m(d, e))` for a whole fragment `h`
//!   against *every* interval of a fragment `m` — the 1-CSR → ISP
//!   reduction (§3.4) and the TPA subroutine (§4.2) consume profits in
//!   exactly this shape, and one DP sweep per start position fills a
//!   whole row of ends;
//! * **site pairs** `MS(h̄, m̄)` for arbitrary site pairs, used by the
//!   improvement methods.
//!
//! Reads take a shared lock; misses fill under a write lock. The
//! oracle is `Sync` and shared across rayon workers.

use crate::match_score::ms_sites;
use fragalign_model::symbol::reverse_word;
use fragalign_model::{FragId, Instance, Orient, Score, Site};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// `MS(h, m(d, e))` for all `0 ≤ d ≤ e ≤ |m|`, plus the winning
/// orientation. Flat `(n+1)²` storage.
#[derive(Clone, Debug)]
pub struct IntervalTable {
    n: usize,
    score_same: Vec<Score>,
    score_rev: Vec<Score>,
}

impl IntervalTable {
    #[inline]
    fn idx(&self, d: usize, e: usize) -> usize {
        d * (self.n + 1) + e
    }

    /// Best score and orientation for the interval `[d, e)`.
    #[inline]
    pub fn get(&self, d: usize, e: usize) -> (Score, Orient) {
        debug_assert!(d <= e && e <= self.n);
        let s = self.score_same[self.idx(d, e)];
        let r = self.score_rev[self.idx(d, e)];
        if r > s {
            (r, Orient::Reversed)
        } else {
            (s, Orient::Same)
        }
    }

    /// Length of the indexed fragment.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Always false — tables exist for real fragments.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Cache statistics (for the `oracle` bench and EXPERIMENTS.md T9).
#[derive(Debug, Default)]
pub struct OracleStats {
    /// Interval-table lookups served from cache.
    pub table_hits: AtomicU64,
    /// Interval tables computed.
    pub table_misses: AtomicU64,
    /// Site-pair lookups served from cache.
    pub pair_hits: AtomicU64,
    /// Site-pair scores computed.
    pub pair_misses: AtomicU64,
}

/// Shared, thread-safe score oracle over one instance.
pub struct ScoreOracle<'a> {
    inst: &'a Instance,
    tables: RwLock<HashMap<(FragId, FragId), Arc<IntervalTable>>>,
    pairs: RwLock<HashMap<(Site, Site), (Score, Orient)>>,
    oriented: RwLock<HashMap<(Site, Site, Orient), Score>>,
    /// Hit/miss counters.
    pub stats: OracleStats,
}

impl<'a> ScoreOracle<'a> {
    /// Create an empty oracle for `inst`.
    pub fn new(inst: &'a Instance) -> Self {
        ScoreOracle {
            inst,
            tables: RwLock::new(HashMap::new()),
            pairs: RwLock::new(HashMap::new()),
            oriented: RwLock::new(HashMap::new()),
            stats: OracleStats::default(),
        }
    }

    /// The instance the oracle scores.
    pub fn instance(&self) -> &'a Instance {
        self.inst
    }

    /// The interval table of whole-fragment `plug` against intervals of
    /// `container`. `plug` and `container` may be any two fragments of
    /// opposite species (either order); scores are computed with σ
    /// applied H-side-first.
    pub fn interval_table(&self, plug: FragId, container: FragId) -> Arc<IntervalTable> {
        if let Some(t) = self.tables.read().get(&(plug, container)) {
            self.stats.table_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(t);
        }
        self.stats.table_misses.fetch_add(1, Ordering::Relaxed);
        let table = Arc::new(self.build_table(plug, container));
        self.tables
            .write()
            .insert((plug, container), Arc::clone(&table));
        table
    }

    fn build_table(&self, plug: FragId, container: FragId) -> IntervalTable {
        let u_raw = &self.inst.fragment(plug).regions;
        let w_raw = &self.inst.fragment(container).regions;
        let n = w_raw.len();
        let h_first = plug.species == fragalign_model::Species::H;

        // score σ must see (H symbol, M symbol); build a closure-free
        // shim by swapping words when the plug is the M fragment:
        // P(u, w[d..e]) with σ(u_i, w_j) when h_first, else σ(w_j, u_i).
        // DpMatrix applies σ(row, col), so put the H-side word on the
        // row axis and transpose interval roles accordingly: intervals
        // are always over `container`, which sits on the column axis
        // when the plug is H, and on the row axis otherwise. To keep a
        // single code path we compute with u on rows and re-key σ via a
        // swapped score table when needed — instead, simpler: when the
        // plug is the M side we swap arguments position-wise per cell
        // using the reversed-keyed instance. The cheapest correct route:
        // materialise σ' with swapped roles once per oracle would cost
        // memory; we instead run the DP with `container` on columns and
        // query σ in the right order through a small adapter.
        let mut score_same = vec![0 as Score; (n + 1) * (n + 1)];
        let mut score_rev = vec![0 as Score; (n + 1) * (n + 1)];

        // Same orientation: for each start d, one DP sweep over w[d..].
        let sigma = &self.inst.sigma;
        let adapter = |a: fragalign_model::Sym, b: fragalign_model::Sym| {
            if h_first {
                sigma.score(a, b)
            } else {
                sigma.score(b, a)
            }
        };
        // DpMatrix needs a ScoreTable; for the swapped case we run a
        // local DP here instead of reusing DpMatrix.
        let fill = |w: &[fragalign_model::Sym], out: &mut [Score]| {
            for d in 0..=n {
                // DP of u vs w[d..]: last row gives P(u, w[d..e]).
                let v = &w[d.min(w.len())..];
                let rows = u_raw.len() + 1;
                let cols = v.len() + 1;
                let mut prev = vec![0 as Score; cols];
                let mut cur = vec![0 as Score; cols];
                for i in 1..rows {
                    cur[0] = 0;
                    for j in 1..cols {
                        let s = adapter(u_raw[i - 1], v[j - 1]);
                        cur[j] = (prev[j - 1] + s).max(prev[j]).max(cur[j - 1]);
                    }
                    std::mem::swap(&mut prev, &mut cur);
                }
                // prev now holds the last filled row (or the zero row
                // when u is empty).
                for e in d..=n {
                    out[d * (n + 1) + e] = prev[e - d];
                }
            }
        };
        fill(w_raw, &mut score_same);

        // Reversed orientation: (w[d..e])^R = w^R[n-e..n-d]; fill a
        // table over w^R and re-index.
        let w_rev = reverse_word(w_raw);
        let mut rev_table = vec![0 as Score; (n + 1) * (n + 1)];
        fill(&w_rev, &mut rev_table);
        for d in 0..=n {
            for e in d..=n {
                score_rev[d * (n + 1) + e] = rev_table[(n - e) * (n + 1) + n - d];
            }
        }

        IntervalTable {
            n,
            score_same,
            score_rev,
        }
    }

    /// `MS(h̄, m̄)` with memoisation. `h` must be an H-species site and
    /// `m` an M-species site.
    pub fn ms(&self, h: Site, m: Site) -> (Score, Orient) {
        let key = (h, m);
        if let Some(&v) = self.pairs.read().get(&key) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.stats.pair_misses.fetch_add(1, Ordering::Relaxed);
        let v = ms_sites(self.inst, h, m);
        self.pairs.write().insert(key, v);
        v
    }

    /// `MS(plug fragment, container(d, e))` through the interval table.
    pub fn ms_full_vs_interval(
        &self,
        plug: FragId,
        container: FragId,
        d: usize,
        e: usize,
    ) -> (Score, Orient) {
        self.interval_table(plug, container).get(d, e)
    }

    /// `P_score` under a pinned relative orientation, memoised. Border
    /// matches need this: their orientation is forced by the staircase
    /// end condition, not free to maximise.
    pub fn ms_oriented(&self, h: Site, m: Site, orient: Orient) -> Score {
        let key = (h, m, orient);
        if let Some(&v) = self.oriented.read().get(&key) {
            self.stats.pair_hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.stats.pair_misses.fetch_add(1, Ordering::Relaxed);
        let v = crate::match_score::p_score_oriented(
            &self.inst.sigma,
            self.inst.site_word(h),
            self.inst.site_word(m),
            orient,
        );
        self.oriented.write().insert(key, v);
        v
    }

    /// Drop all cached entries (used by the cache ablation bench).
    pub fn clear(&self) {
        self.tables.write().clear();
        self.pairs.write().clear();
        self.oriented.write().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_score::ms_words;
    use fragalign_model::instance::paper_example;
    use fragalign_model::{FragId, Site};

    #[test]
    fn interval_table_matches_direct_ms() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        for h in inst.frag_ids(fragalign_model::Species::H) {
            for m in inst.frag_ids(fragalign_model::Species::M) {
                let table = oracle.interval_table(h, m);
                let n = inst.frag_len(m);
                for d in 0..n {
                    for e in (d + 1)..=n {
                        let direct = ms_words(
                            &inst.sigma,
                            &inst.fragment(h).regions,
                            inst.fragment(m).slice(d, e),
                        );
                        assert_eq!(table.get(d, e), direct, "h={h:?} m={m:?} [{d},{e})");
                    }
                }
            }
        }
    }

    #[test]
    fn interval_table_m_plug_swaps_sigma_roles() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        // plug = m2 = ⟨u, v⟩ into intervals of h1 = ⟨a, b, c⟩:
        // σ(c, u) = 5 so interval ⟨c⟩ = [2,3) scores 5.
        let t = oracle.interval_table(FragId::m(1), FragId::h(0));
        assert_eq!(t.get(2, 3).0, 5);
        assert_eq!(t.get(0, 3).0, 5);
        assert_eq!(t.get(0, 2).0, 0);
    }

    #[test]
    fn reversed_intervals_reindexed_correctly() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        // h2 = ⟨d⟩ vs m2 = ⟨u, v⟩: σ(d, v^R) = 2 ⇒ interval ⟨v⟩ = [1,2)
        // scores 2 with Reversed orientation.
        let t = oracle.interval_table(FragId::h(1), FragId::m(1));
        assert_eq!(t.get(1, 2), (2, Orient::Reversed));
        assert_eq!(t.get(0, 1), (0, Orient::Same));
    }

    #[test]
    fn caches_hit_on_repeat() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let _ = oracle.interval_table(FragId::h(0), FragId::m(0));
        let _ = oracle.interval_table(FragId::h(0), FragId::m(0));
        assert_eq!(oracle.stats.table_misses.load(Ordering::Relaxed), 1);
        assert_eq!(oracle.stats.table_hits.load(Ordering::Relaxed), 1);
        let s1 = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        let s2 = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        assert_eq!(s1, s2);
        assert_eq!(oracle.stats.pair_misses.load(Ordering::Relaxed), 1);
        assert_eq!(oracle.stats.pair_hits.load(Ordering::Relaxed), 1);
        oracle.clear();
        let _ = oracle.ms(Site::new(FragId::h(0), 0, 2), Site::new(FragId::m(0), 0, 2));
        assert_eq!(oracle.stats.pair_misses.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn empty_interval_scores_zero() {
        let inst = paper_example();
        let oracle = ScoreOracle::new(&inst);
        let t = oracle.interval_table(FragId::h(0), FragId::m(0));
        for d in 0..=inst.frag_len(FragId::m(0)) {
            assert_eq!(t.get(d, d).0, 0);
        }
    }
}
