//! Match scores `MS(h̄, m̄)` (Definition 4, Figs. 7–8).
//!
//! For any pair of sites, `MS(h̄, m̄) = max(P_score(h̄, m̄),
//! P_score(h̄, m̄^R))`: because `⊥` columns are free and the alignment
//! is a maximum, the flush-end case analysis of Fig. 8 collapses to the
//! same two orientation candidates as the full-site case of Fig. 7
//! (see DESIGN.md, decision D5). We record *which* orientation won;
//! the consistency layer uses it to check the staircase condition for
//! border matches.

use crate::dp::p_score;
use fragalign_model::symbol::reverse_word;
use fragalign_model::{Instance, Orient, Score, ScoreTable, Site, Sym};

/// `MS` over explicit words: the best of the two relative orientations,
/// with ties resolved to `Same` for determinism.
pub fn ms_words(sigma: &ScoreTable, u: &[Sym], v: &[Sym]) -> (Score, Orient) {
    let same = p_score(sigma, u, v);
    let vr = reverse_word(v);
    let rev = p_score(sigma, u, &vr);
    if rev > same {
        (rev, Orient::Reversed)
    } else {
        (same, Orient::Same)
    }
}

/// `MS` over sites of an instance.
pub fn ms_sites(inst: &Instance, h: Site, m: Site) -> (Score, Orient) {
    ms_words(&inst.sigma, inst.site_word(h), inst.site_word(m))
}

/// The word a site spells when its fragment is laid with `rev`.
pub fn site_laid_word(inst: &Instance, site: Site, rev: bool) -> Vec<Sym> {
    let w = inst.site_word(site);
    if rev {
        reverse_word(w)
    } else {
        w.to_vec()
    }
}

/// `P_score` under a fixed relative orientation (used when a match's
/// orientation is already pinned by the surrounding island).
pub fn p_score_oriented(sigma: &ScoreTable, u: &[Sym], v: &[Sym], orient: Orient) -> Score {
    match orient {
        Orient::Same => p_score(sigma, u, v),
        Orient::Reversed => p_score(sigma, u, &reverse_word(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fragalign_model::instance::paper_example;
    use fragalign_model::FragId;

    #[test]
    fn fig7_inner_site_vs_full_site() {
        // Fig. 7: matching a full fragment against an inner site tries
        // both orientations. h2 = ⟨d⟩ against m1's inner... m1 = ⟨s,t⟩;
        // site ⟨t⟩: σ(d, t) = 2 forward.
        let inst = paper_example();
        let h2 = Site::full(FragId::h(1), 1);
        let t_site = Site::new(FragId::m(0), 1, 2);
        let (s, o) = ms_sites(&inst, h2, t_site);
        assert_eq!((s, o), (2, Orient::Same));
    }

    #[test]
    fn reversed_orientation_wins() {
        // σ(d, v^R) = 2: matching ⟨d⟩ against site ⟨v⟩ must pick the
        // reversed orientation.
        let inst = paper_example();
        let h2 = Site::full(FragId::h(1), 1);
        let v_site = Site::new(FragId::m(1), 1, 2);
        let (s, o) = ms_sites(&inst, h2, v_site);
        assert_eq!((s, o), (2, Orient::Reversed));
    }

    #[test]
    fn orientation_tie_prefers_same() {
        let mut t = ScoreTable::new();
        t.set(Sym::fwd(0), Sym::fwd(1), 3);
        t.set(Sym::fwd(0), Sym::rev(1), 3);
        let (s, o) = ms_words(&t, &[Sym::fwd(0)], &[Sym::fwd(1)]);
        assert_eq!((s, o), (3, Orient::Same));
    }

    #[test]
    fn ms_is_reversal_invariant_on_both() {
        // MS(u, v) computed via (u^R, v^R) must agree: P(u,v)=P(u^R,v^R).
        let inst = paper_example();
        let u = inst.site_word(Site::full(FragId::h(0), 3)).to_vec();
        let v = inst.site_word(Site::full(FragId::m(0), 2)).to_vec();
        let (s1, _) = ms_words(&inst.sigma, &u, &v);
        let (s2, _) = ms_words(&inst.sigma, &reverse_word(&u), &reverse_word(&v));
        assert_eq!(s1, s2);
    }

    #[test]
    fn fig8_border_sites_reduce_to_orientation_max() {
        // Border sites: suffix ⟨b,c⟩ of h1 against prefix ⟨s,t⟩ of m1.
        // Forward finds nothing aligned in order except... σ(b,t^R)=3 is
        // reversed-only, σ(c,u)=5 not present here, σ(a,s)=4 not in the
        // sites. Forward: σ(b,s)=0, σ(b,t)=0, σ(c,s)=0, σ(c,t)=0 → 0.
        // Reversed v = ⟨t^R, s^R⟩: σ(b, t^R) = 3 → 3.
        let inst = paper_example();
        let h_suffix = Site::new(FragId::h(0), 1, 3);
        let m_prefix = Site::new(FragId::m(0), 0, 2);
        let (s, o) = ms_sites(&inst, h_suffix, m_prefix);
        assert_eq!((s, o), (3, Orient::Reversed));
    }

    #[test]
    fn oriented_p_score_matches_ms_components() {
        let inst = paper_example();
        let u = inst.site_word(Site::full(FragId::h(0), 3));
        let v = inst.site_word(Site::full(FragId::m(0), 2));
        let same = p_score_oriented(&inst.sigma, u, v, Orient::Same);
        let rev = p_score_oriented(&inst.sigma, u, v, Orient::Reversed);
        let (best, _) = ms_words(&inst.sigma, u, v);
        assert_eq!(best, same.max(rev));
    }
}
